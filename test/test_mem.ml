(* Tests for physical memory, page tables, the TLB, and the combined
   MMU (including two-stage walks and PAN semantics). *)

open Lz_arm
open Lz_mem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let attrs ?(user = false) ?(ro = false) ?(uxn = true) ?(pxn = false)
    ?(ng = true) () =
  { Pte.user; read_only = ro; uxn; pxn; ng }

let rw = Stage2.{ read = true; write = true; exec = false }
let rx = Stage2.{ read = true; write = false; exec = true }
let ro_perms = Stage2.{ read = true; write = false; exec = false }

(* ------------------------------------------------------------------ *)
(* Phys *)

let test_phys_rw () =
  let p = Phys.create () in
  Phys.write64 p 0x1000 0x1122334455667788;
  check_int "read64" 0x1122334455667788 (Phys.read64 p 0x1000);
  check_int "read8" 0x88 (Phys.read8 p 0x1000);
  check_int "read8 hi" 0x11 (Phys.read8 p 0x1007);
  Phys.write32 p 0x2000 0xCAFEBABE;
  check_int "read32" 0xCAFEBABE (Phys.read32 p 0x2000)

let test_phys_cross_page () =
  let p = Phys.create () in
  (* Straddle a frame boundary. *)
  Phys.write64 p 0x1FFC 0x0123456789ABCDEF;
  check_int "cross-page read" 0x0123456789ABCDEF (Phys.read64 p 0x1FFC);
  let b = Bytes.of_string "hello, world" in
  Phys.write_bytes p 0x2FFA b;
  Alcotest.(check string)
    "bytes straddle" "hello, world"
    (Bytes.to_string (Phys.read_bytes p 0x2FFA 12))

let test_phys_alloc () =
  let p = Phys.create () in
  let a = Phys.alloc_frame p in
  let b = Phys.alloc_frame p in
  check_bool "distinct" true (a <> b);
  check_bool "aligned" true (Bits.is_aligned a 4096);
  check_int "two handed out" 2 (Phys.allocated_frames p);
  Phys.write64 p a 99;
  Phys.free_frame p a;
  check_int "freed" 1 (Phys.allocated_frames p);
  let c = Phys.alloc_frame p in
  check_int "recycled" a c;
  check_int "zeroed on free" 0 (Phys.read64 p c)

let test_phys_contiguous () =
  let p = Phys.create () in
  let a = Phys.alloc_frames p 4 in
  check_bool "aligned" true (Bits.is_aligned a 4096);
  Phys.write8 p (a + (3 * 4096)) 7;
  check_int "last frame usable" 7 (Phys.read8 p (a + (3 * 4096)))

(* ------------------------------------------------------------------ *)
(* Pte *)

let test_pte_s1 () =
  let a = attrs ~user:true ~ro:true ~uxn:true ~pxn:true ~ng:true () in
  let pte = Pte.make_s1_page ~pa:0xABC000 a in
  check_bool "valid" true (Pte.valid pte);
  check_int "addr" 0xABC000 (Pte.out_addr pte);
  let a' = Pte.s1_attrs pte in
  check_bool "user" true a'.user;
  check_bool "ro" true a'.read_only;
  check_bool "uxn" true a'.uxn;
  check_bool "pxn" true a'.pxn;
  check_bool "ng" true a'.ng

let test_pte_attr_rewrite () =
  let pte = Pte.make_s1_page ~pa:0x5000 (attrs ()) in
  let pte' = Pte.with_s1_attrs pte (attrs ~user:true ()) in
  check_int "addr preserved" 0x5000 (Pte.out_addr pte');
  check_bool "user now" true (Pte.s1_attrs pte').user

let test_pte_s2 () =
  let pte = Pte.make_s2_page ~pa:0x7000 ~read:true ~write:false ~exec:true in
  check_bool "r" true (Pte.s2_read pte);
  check_bool "w" false (Pte.s2_write pte);
  check_bool "x" true (Pte.s2_exec pte)

let test_pte_table () =
  let t = Pte.make_s1_table ~pa:0x9000 in
  check_bool "is table at 0" true (Pte.is_table ~level:0 t);
  check_bool "not table at 3" false (Pte.is_table ~level:3 t)

(* ------------------------------------------------------------------ *)
(* Stage1 *)

let test_s1_map_walk () =
  let p = Phys.create () in
  let root = Stage1.create_root p in
  let frame = Phys.alloc_frame p in
  Stage1.map_page p ~root ~va:0x400000 ~pa:frame (attrs ());
  (match Stage1.walk p ~root ~va:0x400123 with
  | Ok w ->
      check_int "pa" (frame lor 0x123) w.pa;
      check_int "level" 3 w.level;
      check_int "page size" 4096 w.page_bytes
  | Error _ -> Alcotest.fail "expected hit");
  (* 0x999000 shares L0/L1 tables with 0x400000 but not the L2 entry. *)
  (match Stage1.walk p ~root ~va:0x999000 with
  | Ok _ -> Alcotest.fail "expected fault"
  | Error e -> check_int "fault level 2" 2 e.fault_level);
  (* A distant VA misses already at level 0. *)
  match Stage1.walk p ~root ~va:0x8000000000 with
  | Ok _ -> Alcotest.fail "expected fault"
  | Error e -> check_int "fault level 0" 0 e.fault_level

let test_s1_block () =
  let p = Phys.create () in
  let root = Stage1.create_root p in
  let m2 = 2 * 1024 * 1024 in
  let pa = Phys.alloc_frames p 512 in
  (* 2 MiB blocks need 2 MiB-aligned PAs; waste a bit to align. *)
  let pa = (pa + m2 - 1) / m2 * m2 in
  Stage1.map_block_2m p ~root ~va:(4 * m2) ~pa (attrs ());
  match Stage1.walk p ~root ~va:((4 * m2) + 0x12345) with
  | Ok w ->
      check_int "pa" (pa + 0x12345) w.pa;
      check_int "level 2" 2 w.level;
      check_int "2MiB" m2 w.page_bytes
  | Error _ -> Alcotest.fail "expected block hit"

let test_s1_unmap_and_attrs () =
  let p = Phys.create () in
  let root = Stage1.create_root p in
  Stage1.map_page p ~root ~va:0x1000 ~pa:(Phys.alloc_frame p) (attrs ());
  check_bool "set_attrs ok" true
    (Stage1.set_attrs p ~root ~va:0x1000 (attrs ~user:true ()));
  (match Stage1.walk p ~root ~va:0x1000 with
  | Ok w -> check_bool "user bit" true w.attrs.user
  | Error _ -> Alcotest.fail "mapped");
  Stage1.unmap p ~root ~va:0x1000;
  check_bool "gone" true (Result.is_error (Stage1.walk p ~root ~va:0x1000));
  check_bool "set_attrs on unmapped" false
    (Stage1.set_attrs p ~root ~va:0x1000 (attrs ()))

let test_s1_iter_and_tables () =
  let p = Phys.create () in
  let root = Stage1.create_root p in
  let vas = [ 0x1000; 0x2000; 0x40000000; 0x7F0000000000 ] in
  List.iter
    (fun va -> Stage1.map_page p ~root ~va ~pa:(Phys.alloc_frame p) (attrs ()))
    vas;
  let seen = ref [] in
  Stage1.iter_pages p ~root (fun ~va ~pte:_ ~level:_ -> seen := va :: !seen);
  check_int "all leaves" (List.length vas) (List.length !seen);
  List.iter
    (fun va -> check_bool "va found" true (List.mem va !seen))
    vas;
  (* 0x1000/0x2000 share all tables (root,L1,L2,L3 = 4); 0x40000000
     shares root+L1 and adds L2+L3 (2); 0x7F0000000000 adds its own
     L1+L2+L3 chain (3). Total 9. *)
  check_int "table count" 9 (List.length (Stage1.table_pages p ~root))

let test_s1_dup_transform () =
  let p = Phys.create () in
  let root = Stage1.create_root p in
  Stage1.map_page p ~root ~va:0x1000 ~pa:0x10000
    (attrs ~user:true ~uxn:false ());
  Stage1.map_page p ~root ~va:0x2000 ~pa:0x11000 (attrs ~user:true ());
  (* EL0->EL1 transformation: exec permission for user becomes exec
     for privileged (UXN -> PXN), and drop the second page. *)
  let root' =
    Stage1.dup p ~root ~transform:(fun ~va pte ->
        if va = 0x2000 then None
        else
          let a = Pte.s1_attrs pte in
          Some
            (Pte.with_s1_attrs pte
               { a with user = false; pxn = a.uxn; uxn = true }))
  in
  (match Stage1.walk p ~root:root' ~va:0x1000 with
  | Ok w ->
      check_bool "kernel page now" false w.attrs.user;
      check_bool "pxn tracks old uxn" false w.attrs.pxn
  | Error _ -> Alcotest.fail "dup kept va 0x1000");
  check_bool "dropped" true
    (Result.is_error (Stage1.walk p ~root:root' ~va:0x2000));
  (* Original is untouched. *)
  match Stage1.walk p ~root ~va:0x2000 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "original intact"

let test_s1_destroy_frees () =
  let p = Phys.create () in
  let before = Phys.allocated_frames p in
  let root = Stage1.create_root p in
  Stage1.map_page p ~root ~va:0x1000 ~pa:0x50000 (attrs ());
  Stage1.destroy p ~root;
  check_int "frames back" before (Phys.allocated_frames p)

(* ------------------------------------------------------------------ *)
(* Stage2 *)

let test_s2_map_walk () =
  let p = Phys.create () in
  let root = Stage2.create_root p in
  Stage2.map_page p ~root ~ipa:0x8000 ~pa:0x123000 rw;
  (match Stage2.walk p ~root ~ipa:0x8FF0 with
  | Ok w ->
      check_int "pa" 0x123FF0 w.pa;
      check_bool "w" true w.perms.write;
      check_bool "x" false w.perms.exec
  | Error _ -> Alcotest.fail "expected hit");
  match Stage2.walk p ~root ~ipa:0x40000000 with
  | Error e -> check_int "fault level 1" 1 e.fault_level
  | Ok _ -> Alcotest.fail "expected fault"

let test_s2_set_perms () =
  let p = Phys.create () in
  let root = Stage2.create_root p in
  Stage2.map_page p ~root ~ipa:0x8000 ~pa:0x123000 rw;
  check_bool "ok" true (Stage2.set_perms p ~root ~ipa:0x8000 ro_perms);
  match Stage2.walk p ~root ~ipa:0x8000 with
  | Ok w -> check_bool "now ro" false w.perms.write
  | Error _ -> Alcotest.fail "still mapped"

let test_s2_identity_range () =
  let p = Phys.create () in
  let root = Stage2.create_root p in
  Stage2.map_identity_range p ~root ~ipa:0x10000 ~len:(3 * 4096) rx;
  match Stage2.walk p ~root ~ipa:0x12000 with
  | Ok w -> check_int "identity" 0x12000 w.pa
  | Error _ -> Alcotest.fail "mapped"

(* ------------------------------------------------------------------ *)
(* Tlb *)

let entry ?(pa = 0x1000) ?(page = 4096) ?s2 ?(a = attrs ()) () =
  { Tlb.pa_page = pa; attrs = a; s2; page_bytes = page }

let test_tlb_hit_miss () =
  let t = Tlb.create () in
  check_bool "cold miss" true
    (Tlb.lookup t ~vmid:1 ~asid:2 ~va:0x1234 = None);
  Tlb.insert t ~vmid:1 ~asid:2 ~va:0x1234 ~global:false (entry ());
  check_bool "hit" true (Tlb.lookup t ~vmid:1 ~asid:2 ~va:0x1FFF <> None);
  check_bool "other asid misses" true
    (Tlb.lookup t ~vmid:1 ~asid:3 ~va:0x1234 = None);
  check_bool "other vmid misses" true
    (Tlb.lookup t ~vmid:2 ~asid:2 ~va:0x1234 = None);
  check_int "three misses" 3 (Tlb.misses t);
  check_int "one hit" 1 (Tlb.hits t)

let test_tlb_global () =
  let t = Tlb.create () in
  Tlb.insert t ~vmid:1 ~asid:7 ~va:0x4000 ~global:true (entry ());
  check_bool "any asid hits global" true
    (Tlb.lookup t ~vmid:1 ~asid:99 ~va:0x4000 <> None);
  (* flush_asid must keep globals. *)
  Tlb.flush_asid t ~vmid:1 ~asid:99;
  check_bool "global survives asid flush" true
    (Tlb.lookup t ~vmid:1 ~asid:5 ~va:0x4000 <> None);
  Tlb.flush_vmid t 1;
  check_bool "vmid flush removes" true
    (Tlb.lookup t ~vmid:1 ~asid:5 ~va:0x4000 = None)

let test_tlb_2m_entries () =
  let t = Tlb.create () in
  let m2 = 2 * 1024 * 1024 in
  Tlb.insert t ~vmid:0 ~asid:1 ~va:(8 * m2) ~global:false
    (entry ~pa:(16 * m2) ~page:m2 ());
  match Tlb.lookup t ~vmid:0 ~asid:1 ~va:((8 * m2) + 0x54321) with
  | Some e -> check_int "block entry" m2 e.Tlb.page_bytes
  | None -> Alcotest.fail "2MiB entry should hit anywhere in the block"

let test_tlb_eviction () =
  let t = Tlb.create ~capacity:4 () in
  for i = 0 to 7 do
    Tlb.insert t ~vmid:0 ~asid:0 ~va:(i * 4096) ~global:false (entry ())
  done;
  check_bool "bounded" true (Tlb.size t <= 4)

let test_tlb_flush_va () =
  let t = Tlb.create () in
  Tlb.insert t ~vmid:0 ~asid:1 ~va:0x5000 ~global:false (entry ());
  Tlb.insert t ~vmid:0 ~asid:2 ~va:0x5000 ~global:false (entry ());
  Tlb.flush_va t ~vmid:0 ~va:0x5000;
  check_bool "all asids flushed" true
    (Tlb.lookup t ~vmid:0 ~asid:1 ~va:0x5000 = None
    && Tlb.lookup t ~vmid:0 ~asid:2 ~va:0x5000 = None)

(* Regression: re-inserting a live key must replace the entry in
   place, not burn a FIFO slot — otherwise the queue outgrows the
   table and eviction pops stale keys while the table sits over
   capacity. *)
let test_tlb_insert_dedupe () =
  let t = Tlb.create ~capacity:4 () in
  for i = 0 to 3 do
    Tlb.insert t ~vmid:0 ~asid:1 ~va:(i * 4096) ~global:false (entry ())
  done;
  for _ = 1 to 10 do
    Tlb.insert t ~vmid:0 ~asid:1 ~va:0 ~global:false (entry ~pa:0x9000 ())
  done;
  check_int "size stable" 4 (Tlb.size t);
  check_int "fifo = size" (Tlb.size t) (Tlb.fifo_length t);
  (match Tlb.lookup t ~vmid:0 ~asid:1 ~va:0 with
  | Some e -> check_int "updated in place" 0x9000 e.Tlb.pa_page
  | None -> Alcotest.fail "key lost by re-insert");
  (* A new key now evicts exactly the oldest entry (page 0): the
     duplicate inserts must not have queued duplicate FIFO slots. *)
  Tlb.insert t ~vmid:0 ~asid:1 ~va:(4 * 4096) ~global:false (entry ());
  check_int "size at capacity" 4 (Tlb.size t);
  check_int "fifo = size after evict" 4 (Tlb.fifo_length t);
  check_bool "oldest evicted" true (Tlb.lookup t ~vmid:0 ~asid:1 ~va:0 = None);
  check_bool "younger survives" true
    (Tlb.lookup t ~vmid:0 ~asid:1 ~va:4096 <> None)

let test_tlb_fifo_after_flush () =
  let t = Tlb.create ~capacity:8 () in
  for i = 0 to 7 do
    Tlb.insert t ~vmid:0 ~asid:(i land 1) ~va:(i * 4096) ~global:false
      (entry ())
  done;
  Tlb.flush_asid t ~vmid:0 ~asid:1;
  check_int "fifo pruned with table" (Tlb.size t) (Tlb.fifo_length t);
  Tlb.flush_vmid t 0;
  check_int "fifo empty after vmid flush" 0 (Tlb.fifo_length t)

(* The 1-entry front cache must not change hit/miss accounting: the
   same probe sequence against a fronted and an unfronted TLB lands on
   identical counters, across front hits, front misses and
   invalidation by insert. *)
let test_tlb_front_accounting () =
  let plain = (Tlb.create (), None) in
  let fronted = (Tlb.create (), Some (Tlb.front_create ())) in
  let both f =
    f plain;
    f fronted
  in
  let probe (t, front) ~asid ~va = ignore (Tlb.lookup ?front t ~vmid:0 ~asid ~va) in
  let ins (t, _) ~va = Tlb.insert t ~vmid:0 ~asid:1 ~va ~global:false (entry ()) in
  both (fun tf -> ins tf ~va:0x7000);
  both (fun tf -> probe tf ~asid:1 ~va:0x7008);
  both (fun tf -> probe tf ~asid:1 ~va:0x7010);
  both (fun tf -> probe tf ~asid:1 ~va:0x8000);
  both (fun tf -> ins tf ~va:0x8000);
  both (fun tf -> probe tf ~asid:1 ~va:0x8004);
  both (fun tf -> probe tf ~asid:2 ~va:0x7000);
  both (fun tf -> probe tf ~asid:1 ~va:0x7000);
  let ta, _ = plain and tb, _ = fronted in
  check_int "hits equal" (Tlb.hits ta) (Tlb.hits tb);
  check_int "misses equal" (Tlb.misses ta) (Tlb.misses tb)

(* ------------------------------------------------------------------ *)
(* Mmu *)

let one_stage_ctx ?(el = Pstate.EL1) ?(pan = false) ?(unpriv = false) ~root ()
    =
  { Mmu.ttbr0 = Mmu.ttbr_value ~root ~asid:1;
    ttbr1 = 0;
    vmid = 0;
    s2_root = None;
    el;
    pan;
    unpriv }

let test_mmu_basic () =
  let p = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root p in
  Stage1.map_page p ~root ~va:0x1000 ~pa:0x77000 (attrs ());
  let ctx = one_stage_ctx ~root () in
  (match Mmu.translate p tlb ctx Mmu.Read ~va:0x1010 with
  | Ok ok ->
      check_int "pa" 0x77010 ok.pa;
      check_bool "first access misses tlb" false ok.tlb_hit;
      check_int "4 walk reads one-stage" 4 ok.walk_reads
  | Error _ -> Alcotest.fail "translate");
  match Mmu.translate p tlb ctx Mmu.Read ~va:0x1020 with
  | Ok ok -> check_bool "tlb hit" true ok.tlb_hit
  | Error _ -> Alcotest.fail "translate 2"

let test_mmu_pan () =
  let p = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root p in
  Stage1.map_page p ~root ~va:0x1000 ~pa:0x77000 (attrs ~user:true ());
  (* EL1 with PAN=1: user page blocked. *)
  let ctx = one_stage_ctx ~pan:true ~root () in
  (match Mmu.translate p tlb ctx Mmu.Read ~va:0x1000 with
  | Error f ->
      check_int "stage 1" 1 f.stage;
      check_bool "permission" true (f.kind = Mmu.Permission)
  | Ok _ -> Alcotest.fail "PAN should block");
  (* PAN=0: allowed. *)
  let ctx0 = one_stage_ctx ~pan:false ~root () in
  check_bool "pan off allows" true
    (Result.is_ok (Mmu.translate p tlb ctx0 Mmu.Read ~va:0x1000));
  (* Unprivileged access ignores PAN (acts as EL0). *)
  let ctxu = one_stage_ctx ~pan:true ~unpriv:true ~root () in
  check_bool "ldtr allowed to user page" true
    (Result.is_ok (Mmu.translate p tlb ctxu Mmu.Read ~va:0x1000))

let test_mmu_el0_and_exec () =
  let p = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root p in
  Stage1.map_page p ~root ~va:0x1000 ~pa:0x77000 (attrs ());
  (* kernel page *)
  Stage1.map_page p ~root ~va:0x2000 ~pa:0x78000
    (attrs ~user:true ~uxn:false ());
  let ctx0 = one_stage_ctx ~el:Pstate.EL0 ~root () in
  check_bool "el0 cannot read kernel page" true
    (Result.is_error (Mmu.translate p tlb ctx0 Mmu.Read ~va:0x1000));
  check_bool "el0 can exec user+x page" true
    (Result.is_ok (Mmu.translate p tlb ctx0 Mmu.Exec ~va:0x2000));
  (* EL1 cannot execute a user-accessible page. *)
  let ctx1 = one_stage_ctx ~el:Pstate.EL1 ~root () in
  check_bool "el1 cannot exec user page" true
    (Result.is_error (Mmu.translate p tlb ctx1 Mmu.Exec ~va:0x2000));
  check_bool "el1 exec kernel page (no pxn)" true
    (Result.is_ok (Mmu.translate p tlb ctx1 Mmu.Exec ~va:0x1000))

let test_mmu_read_only () =
  let p = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root p in
  Stage1.map_page p ~root ~va:0x1000 ~pa:0x77000 (attrs ~ro:true ());
  let ctx = one_stage_ctx ~root () in
  check_bool "read ok" true
    (Result.is_ok (Mmu.translate p tlb ctx Mmu.Read ~va:0x1000));
  check_bool "write blocked" true
    (Result.is_error (Mmu.translate p tlb ctx Mmu.Write ~va:0x1000))

let test_mmu_ttbr1_select () =
  let p = Phys.create () in
  let tlb = Tlb.create () in
  let r0 = Stage1.create_root p in
  let r1 = Stage1.create_root p in
  Stage1.map_page p ~root:r0 ~va:0x1000 ~pa:0x10000 (attrs ());
  let hi = 0x800000001000 in
  Stage1.map_page p ~root:r1 ~va:hi ~pa:0x20000 (attrs ());
  let ctx =
    { (one_stage_ctx ~root:r0 ()) with
      Mmu.ttbr1 = Mmu.ttbr_value ~root:r1 ~asid:1 }
  in
  (match Mmu.translate p tlb ctx Mmu.Read ~va:0x1000 with
  | Ok ok -> check_int "low via ttbr0" 0x10000 ok.pa
  | Error _ -> Alcotest.fail "low");
  match Mmu.translate p tlb ctx Mmu.Read ~va:hi with
  | Ok ok -> check_int "high via ttbr1" 0x20000 ok.pa
  | Error _ -> Alcotest.fail "high"

let two_stage_setup () =
  let p = Phys.create () in
  let tlb = Tlb.create () in
  let s1 = Stage1.create_root p in
  let s2 = Stage2.create_root p in
  (* stage-1 maps VA 0x1000 -> IPA 0x9000; stage-2 maps IPA 0x9000 ->
     PA 0x55000, and must also map the stage-1 table frames so walks
     can proceed. *)
  Stage1.map_page p ~root:s1 ~va:0x1000 ~pa:0x9000 (attrs ());
  Stage2.map_page p ~root:s2 ~ipa:0x9000 ~pa:0x55000 rw;
  List.iter
    (fun tp -> Stage2.map_page p ~root:s2 ~ipa:tp ~pa:tp ro_perms)
    (Stage1.table_pages p ~root:s1);
  (p, tlb, s1, s2)

let test_mmu_two_stage () =
  let p, tlb, s1, s2 = two_stage_setup () in
  let ctx =
    { Mmu.ttbr0 = Mmu.ttbr_value ~root:s1 ~asid:1;
      ttbr1 = 0; vmid = 3; s2_root = Some s2; el = Pstate.EL1;
      pan = false; unpriv = false }
  in
  (match Mmu.translate p tlb ctx Mmu.Read ~va:0x1234 with
  | Ok ok ->
      check_int "pa through both stages" 0x55234 ok.pa;
      (* 4 s1 levels x (3 s2 walk reads + 1 pte read) + 3 final = 19 *)
      check_int "two-stage walk cost" 19 ok.walk_reads
  | Error f -> Alcotest.failf "two-stage: %a" Mmu.pp_fault f);
  (* A second access hits the combined TLB entry. *)
  match Mmu.translate p tlb ctx Mmu.Read ~va:0x1234 with
  | Ok ok -> check_bool "combined tlb hit" true ok.tlb_hit
  | Error _ -> Alcotest.fail "hit"

let test_mmu_s2_denies_write () =
  let p, tlb, s1, s2 = two_stage_setup () in
  (* Make the data page read-only at stage 2 even though stage 1
     allows writes — the LightZone table-protection pattern. *)
  ignore (Stage2.set_perms p ~root:s2 ~ipa:0x9000 ro_perms);
  let ctx =
    { Mmu.ttbr0 = Mmu.ttbr_value ~root:s1 ~asid:1;
      ttbr1 = 0; vmid = 3; s2_root = Some s2; el = Pstate.EL1;
      pan = false; unpriv = false }
  in
  match Mmu.translate p tlb ctx Mmu.Write ~va:0x1000 with
  | Error f -> check_int "stage 2 fault" 2 f.stage
  | Ok _ -> Alcotest.fail "stage-2 must deny"

let test_mmu_s2_table_fault () =
  let p = Phys.create () in
  let tlb = Tlb.create () in
  let s1 = Stage1.create_root p in
  let s2 = Stage2.create_root p in
  Stage1.map_page p ~root:s1 ~va:0x1000 ~pa:0x9000 (attrs ());
  Stage2.map_page p ~root:s2 ~ipa:0x9000 ~pa:0x55000 rw;
  (* stage-1 tables NOT mapped in stage 2: the walk itself faults. *)
  let ctx =
    { Mmu.ttbr0 = Mmu.ttbr_value ~root:s1 ~asid:1;
      ttbr1 = 0; vmid = 3; s2_root = Some s2; el = Pstate.EL1;
      pan = false; unpriv = false }
  in
  match Mmu.translate p tlb ctx Mmu.Read ~va:0x1000 with
  | Error f ->
      check_int "stage 2" 2 f.stage;
      check_bool "ipa reported" true (f.ipa >= 0)
  | Ok _ -> Alcotest.fail "walk should fault in stage 2"

let test_ttbr_value () =
  let v = Mmu.ttbr_value ~root:0xABC000 ~asid:42 in
  check_int "root" 0xABC000 (Mmu.ttbr_root v);
  check_int "asid" 42 (Mmu.ttbr_asid v)

(* QCheck: stage-1 map/walk agreement over random va/pa pairs. *)
let prop_s1_walk_matches_map =
  QCheck2.Test.make ~name:"stage1 walk returns mapped pa" ~count:200
    QCheck2.Gen.(
      pair (int_range 0 0xFFFFFF) (int_range 1 0xFFFFF))
    (fun (vpage, ppage) ->
      let p = Phys.create () in
      let root = Stage1.create_root p in
      let va = vpage * 4096 and pa = ppage * 4096 in
      Stage1.map_page p ~root ~va ~pa (attrs ());
      match Stage1.walk p ~root ~va:(va + 5) with
      | Ok w -> w.pa = pa + 5
      | Error _ -> false)

let () =
  Alcotest.run "lz_mem"
    [ ( "phys",
        [ Alcotest.test_case "read/write" `Quick test_phys_rw;
          Alcotest.test_case "cross page" `Quick test_phys_cross_page;
          Alcotest.test_case "alloc/free" `Quick test_phys_alloc;
          Alcotest.test_case "contiguous" `Quick test_phys_contiguous ] );
      ( "pte",
        [ Alcotest.test_case "stage1 bits" `Quick test_pte_s1;
          Alcotest.test_case "attr rewrite" `Quick test_pte_attr_rewrite;
          Alcotest.test_case "stage2 bits" `Quick test_pte_s2;
          Alcotest.test_case "table type" `Quick test_pte_table ] );
      ( "stage1",
        [ Alcotest.test_case "map/walk" `Quick test_s1_map_walk;
          Alcotest.test_case "2MiB block" `Quick test_s1_block;
          Alcotest.test_case "unmap/attrs" `Quick test_s1_unmap_and_attrs;
          Alcotest.test_case "iter/tables" `Quick test_s1_iter_and_tables;
          Alcotest.test_case "dup+transform" `Quick test_s1_dup_transform;
          Alcotest.test_case "destroy frees" `Quick test_s1_destroy_frees;
          QCheck_alcotest.to_alcotest prop_s1_walk_matches_map ] );
      ( "stage2",
        [ Alcotest.test_case "map/walk" `Quick test_s2_map_walk;
          Alcotest.test_case "set perms" `Quick test_s2_set_perms;
          Alcotest.test_case "identity range" `Quick test_s2_identity_range ]
      );
      ( "tlb",
        [ Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "global entries" `Quick test_tlb_global;
          Alcotest.test_case "2MiB entries" `Quick test_tlb_2m_entries;
          Alcotest.test_case "eviction" `Quick test_tlb_eviction;
          Alcotest.test_case "flush va" `Quick test_tlb_flush_va;
          Alcotest.test_case "insert dedupe" `Quick test_tlb_insert_dedupe;
          Alcotest.test_case "fifo after flush" `Quick
            test_tlb_fifo_after_flush;
          Alcotest.test_case "front accounting" `Quick
            test_tlb_front_accounting ] );
      ( "mmu",
        [ Alcotest.test_case "basic" `Quick test_mmu_basic;
          Alcotest.test_case "pan" `Quick test_mmu_pan;
          Alcotest.test_case "el0 + exec rules" `Quick test_mmu_el0_and_exec;
          Alcotest.test_case "read only" `Quick test_mmu_read_only;
          Alcotest.test_case "ttbr1 select" `Quick test_mmu_ttbr1_select;
          Alcotest.test_case "two-stage" `Quick test_mmu_two_stage;
          Alcotest.test_case "s2 denies write" `Quick test_mmu_s2_denies_write;
          Alcotest.test_case "s2 table fault" `Quick test_mmu_s2_table_fault;
          Alcotest.test_case "ttbr value" `Quick test_ttbr_value ] ) ]
