(* Property-based tests over the core invariants:

   - the sanitizer never lets an instruction through that could move
     the translation base or return from an exception;
   - the MMU permission model is monotone (PAN only removes rights;
     read-only only removes writes);
   - stage-1 trees keep unrelated mappings intact under random
     map/unmap interleavings;
   - the TLB is a transparent cache: with and without it, translation
     agrees;
   - AES encrypt/decrypt are inverses for random keys and plaintexts;
   - a LightZone process with N random domains allows exactly the
     accesses its protection registry says it should. *)

open Lz_arm
open Lz_mem
open Lightzone

let q = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Sanitizer properties *)

let arbitrary_word =
  QCheck2.Gen.(map2 (fun a b -> a lor (b lsl 16)) (int_bound 0xFFFF)
                 (int_bound 0xFFFF))

let prop_sanitizer_blocks_ttbr_writes =
  QCheck2.Test.make ~name:"sanitizer: no TTBR0/TTBR1 write passes as Allowed"
    ~count:5000 arbitrary_word (fun w ->
      match Encoding.decode w with
      | Insn.Msr (Sysreg.TTBR0_EL1, _) | Insn.Msr (Sysreg.TTBR1_EL1, _) ->
          Sanitizer.classify Sanitizer.Ttbr_mode w <> Sanitizer.Allowed
          && Sanitizer.classify Sanitizer.Pan_mode w <> Sanitizer.Allowed
      | _ -> true)

let prop_sanitizer_blocks_eret =
  QCheck2.Test.make ~name:"sanitizer: ERET never allowed" ~count:1000
    QCheck2.Gen.unit (fun () ->
      Sanitizer.classify Sanitizer.Ttbr_mode 0xD69F03E0 <> Sanitizer.Allowed)

let prop_sanitizer_pan_mode_blocks_unpriv =
  QCheck2.Test.make
    ~name:"sanitizer: every unprivileged load/store blocked in PAN mode"
    ~count:3000 arbitrary_word (fun w ->
      match Encoding.decode w with
      | Insn.Ldtr _ | Insn.Sttr _ | Insn.Ldtrb _ | Insn.Sttrb _ ->
          (match Sanitizer.classify Sanitizer.Pan_mode w with
          | Sanitizer.Forbidden _ -> true
          | _ -> false)
      | _ -> true)

let prop_sanitizer_allows_plain_code =
  QCheck2.Test.make ~name:"sanitizer: ALU/branch/load/store always allowed"
    ~count:3000 arbitrary_word (fun w ->
      match Encoding.decode w with
      | Insn.Add _ | Insn.Sub _ | Insn.Movz _ | Insn.Movk _ | Insn.B _
      | Insn.Bl _ | Insn.Ret _ | Insn.Ldr _ | Insn.Str _ | Insn.Cbz _ ->
          Sanitizer.classify Sanitizer.Ttbr_mode w = Sanitizer.Allowed
          && Sanitizer.classify Sanitizer.Pan_mode w = Sanitizer.Allowed
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* MMU permission monotonicity *)

let attrs_gen =
  QCheck2.Gen.(
    map4
      (fun user ro uxn (pxn, ng) -> { Pte.user; read_only = ro; uxn; pxn; ng })
      bool bool bool (pair bool bool))

let accesses = [ Mmu.Read; Mmu.Write; Mmu.Exec ]

let allowed ~el ~pan attrs access =
  let phys = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root phys in
  Stage1.map_page phys ~root ~va:0x1000 ~pa:0x5000 attrs;
  let ctx =
    { Mmu.ttbr0 = Mmu.ttbr_value ~root ~asid:1; ttbr1 = 0; vmid = 0;
      s2_root = None; el; pan; unpriv = false }
  in
  Result.is_ok (Mmu.translate phys tlb ctx access ~va:0x1000)

let prop_pan_only_removes =
  QCheck2.Test.make ~name:"mmu: PAN never grants an access" ~count:300
    attrs_gen (fun a ->
      List.for_all
        (fun acc ->
          let without = allowed ~el:Pstate.EL1 ~pan:false a acc in
          let with_pan = allowed ~el:Pstate.EL1 ~pan:true a acc in
          (not with_pan) || without)
        accesses)

let prop_read_only_blocks_writes =
  QCheck2.Test.make ~name:"mmu: read_only always blocks writes" ~count:300
    attrs_gen (fun a ->
      not (allowed ~el:Pstate.EL1 ~pan:false { a with Pte.read_only = true }
             Mmu.Write))

let prop_el0_needs_user =
  QCheck2.Test.make ~name:"mmu: EL0 cannot touch kernel pages" ~count:300
    attrs_gen (fun a ->
      List.for_all
        (fun acc ->
          not (allowed ~el:Pstate.EL0 ~pan:false { a with Pte.user = false }
                 acc))
        accesses)

let prop_el1_never_executes_user_pages =
  QCheck2.Test.make ~name:"mmu: EL1 never executes user pages" ~count:300
    attrs_gen (fun a ->
      not (allowed ~el:Pstate.EL1 ~pan:false { a with Pte.user = true }
             Mmu.Exec))

(* ------------------------------------------------------------------ *)
(* Stage-1 under random operation sequences *)

type s1_op = Map of int * int | Unmap of int

let s1_ops_gen =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (oneof
         [ map2 (fun v p -> Map (v land 0x3FF, (p land 0x3FF) + 1))
             (int_bound 0x3FF) (int_bound 0x3FF);
           map (fun v -> Unmap (v land 0x3FF)) (int_bound 0x3FF) ]))

let prop_s1_model_agreement =
  QCheck2.Test.make ~name:"stage1: agrees with a map model" ~count:200
    s1_ops_gen (fun ops ->
      let phys = Phys.create () in
      let root = Stage1.create_root phys in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | Map (vp, pp) ->
              Stage1.map_page phys ~root ~va:(vp * 4096) ~pa:(pp * 4096)
                { Pte.user = false; read_only = false; uxn = true;
                  pxn = true; ng = true };
              Hashtbl.replace model vp pp
          | Unmap vp ->
              Stage1.unmap phys ~root ~va:(vp * 4096);
              Hashtbl.remove model vp)
        ops;
      Hashtbl.fold
        (fun vp pp ok ->
          ok
          &&
          match Stage1.walk phys ~root ~va:(vp * 4096) with
          | Ok w -> w.Stage1.pa = pp * 4096
          | Error _ -> false)
        model true
      &&
      (* and nothing unexpected resolves *)
      List.for_all
        (fun op ->
          match op with
          | Unmap vp when not (Hashtbl.mem model vp) ->
              Result.is_error (Stage1.walk phys ~root ~va:(vp * 4096))
          | _ -> true)
        ops)

(* ------------------------------------------------------------------ *)
(* TLB transparency *)

let prop_tlb_transparent =
  QCheck2.Test.make ~name:"tlb: cached translation equals uncached"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) (int_bound 0xFF))
    (fun vps ->
      let phys = Phys.create () in
      let tlb = Tlb.create ~capacity:8 () in
      let no_tlb = Tlb.create ~capacity:1 () in
      let root = Stage1.create_root phys in
      List.iteri
        (fun i vp ->
          Stage1.map_page phys ~root ~va:(vp * 4096)
            ~pa:((i + 1) * 4096)
            { Pte.user = false; read_only = false; uxn = true; pxn = true;
              ng = i mod 2 = 0 })
        vps;
      let ctx tlb_ =
        ignore tlb_;
        { Mmu.ttbr0 = Mmu.ttbr_value ~root ~asid:3; ttbr1 = 0; vmid = 0;
          s2_root = None; el = Pstate.EL1; pan = false; unpriv = false }
      in
      (* Touch everything twice through the small TLB and compare with
         a TLB too small to ever hit. *)
      List.for_all
        (fun vp ->
          let a = Mmu.translate phys tlb (ctx tlb) Mmu.Read ~va:(vp * 4096) in
          let b =
            Mmu.translate phys no_tlb (ctx no_tlb) Mmu.Read ~va:(vp * 4096)
          in
          match (a, b) with
          | Ok x, Ok y -> x.Mmu.pa = y.Mmu.pa
          | Error _, Error _ -> true
          | _ -> false)
        (vps @ vps))

(* ------------------------------------------------------------------ *)
(* AES inverse *)

let prop_aes_roundtrip =
  QCheck2.Test.make ~name:"aes: decrypt . encrypt = id" ~count:200
    QCheck2.Gen.(pair (string_size (return 16)) (string_size (return 16)))
    (fun (key, plain) ->
      let k = Lz_workloads.Aes.expand_key key in
      let buf = Bytes.of_string plain in
      Lz_workloads.Aes.encrypt_block k buf ~pos:0;
      let changed = Bytes.to_string buf <> plain in
      Lz_workloads.Aes.decrypt_block k buf ~pos:0;
      changed && Bytes.to_string buf = plain)

let prop_aes_cbc_roundtrip =
  QCheck2.Test.make ~name:"aes: CBC roundtrip, multi-block" ~count:100
    QCheck2.Gen.(
      triple (string_size (return 16)) (string_size (return 16))
        (int_range 1 8))
    (fun (key, iv, blocks) ->
      let k = Lz_workloads.Aes.expand_key key in
      let plain =
        Bytes.init (16 * blocks) (fun i -> Char.chr ((i * 7) land 0xFF))
      in
      let iv = Bytes.of_string iv in
      let c = Lz_workloads.Aes.encrypt_cbc k ~iv plain in
      Bytes.equal (Lz_workloads.Aes.decrypt_cbc k ~iv c) plain)

(* ------------------------------------------------------------------ *)
(* LightZone end-to-end domain-policy property *)

let code_va = 0x400000
let domains_va = 0x600000
let stack_va = 0x7F0000000000

(* Random policy: [n] domains, each attached to one of three page
   tables; a probe sequence of (pgt, domain) accesses. The process
   must survive exactly the accesses whose domain is attached to the
   table it is in, and be terminated at the first violation. *)
let prop_lz_policy =
  QCheck2.Test.make ~name:"lightzone: registry decides every access"
    ~count:40
    QCheck2.Gen.(
      pair
        (list_size (return 6) (int_bound 2))  (* domain -> pgt index *)
        (list_size (int_range 1 8) (pair (int_bound 2) (int_bound 5))))
    (fun (attach, probes) ->
      let machine = Lz_kernel.Machine.create () in
      let kernel = Lz_kernel.Kernel.create machine Lz_kernel.Kernel.Host_vhe in
      let proc = Lz_kernel.Kernel.create_process kernel in
      ignore (Lz_kernel.Kernel.map_anon kernel proc ~at:(stack_va - 0x10000)
                ~len:0x10000 Lz_kernel.Vma.rw);
      ignore (Lz_kernel.Kernel.map_anon kernel proc ~at:domains_va
                ~len:(6 * 4096) Lz_kernel.Vma.rw);
      let t =
        Api.lz_enter ~allow_scalable:true ~insn_san:1 ~entry:code_va
          ~sp:stack_va kernel proc
      in
      let pgts = Array.init 3 (fun _ -> Api.lz_alloc t) in
      List.iteri
        (fun d p ->
          Api.lz_prot t ~addr:(domains_va + (d * 4096)) ~len:4096
            ~pgt:pgts.(p) ~perm:(Perm.read lor Perm.write))
        attach;
      (* Expected outcome: scan the probes for the first violation. *)
      let expected_violation =
        List.exists
          (fun (p, d) -> List.nth attach d <> p)
          probes
      in
      (* Drive via the module-side helpers (equivalent to gate passes
         for policy purposes; the gate mechanics are covered by their
         own tests). *)
      let violated = ref false in
      List.iter
        (fun (p, d) ->
          if not !violated then begin
            Kmod.set_current_pgt t pgts.(p);
            Kmod.prefault t ~va:(domains_va + (d * 4096))
              ~access:Lz_mem.Mmu.Read;
            match t.Kmod.terminated with
            | Some _ -> violated := true
            | None -> ()
          end)
        probes;
      !violated = expected_violation)

(* ------------------------------------------------------------------ *)
(* Execution-engine differential: the per-instruction fast path
   (decoded-insn cache, micro-TLBs, memoized MMU context) and the
   superblock engine layered on it must both be architecturally
   invisible. Run each microbench program all three ways on a random
   iteration count and require bit-identical registers, memory,
   cycle/instruction totals and TLB statistics. *)

module Core = Lz_cpu.Core

let prop_fast_slow_equivalent =
  QCheck2.Test.make
    ~name:"core: fast path and superblocks are architecturally invisible"
    ~count:20
    QCheck2.Gen.(
      pair (oneofl Lz_workloads.Microbench.names) (int_range 1 500))
    (fun (name, iters) ->
      let open Lz_workloads.Microbench in
      let slow = run_summary ~fast:false ~iters name in
      let fast = run_summary ~fast:true ~blocks:false ~iters name in
      let blk = run_summary ~fast:true ~blocks:true ~iters name in
      slow = fast && slow = blk)

(* Self-modifying code: every iteration computes a fresh MOVZ
   encoding, stores it over the patch site in its own (writable,
   executable) code page — optionally followed by IC IALLU — and then
   executes it. All three engines must observe each patched
   instruction at exactly the same iteration, so the accumulated sum
   in x6 (and every counter) distinguishes any stale-decode bug. *)
let smc_summary ~fast ~blocks ~iters ~with_ic =
  let code_va = 0x10000 in
  let phys = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root phys in
  let code_pa = Phys.alloc_frame phys in
  Stage1.map_page phys ~root ~va:code_va ~pa:code_pa
    { Pte.user = false; read_only = false; uxn = true; pxn = false;
      ng = true };
  let base = Encoding.encode (Insn.Movz (5, 0, 0)) in
  let patch_idx = 12 in
  let program =
    [ Insn.Movz (0, iters, 0);                        (*  0 *)
      Insn.Movz (1, code_va land 0xFFFF, 0);          (*  1 *)
      Insn.Movk (1, code_va lsr 16, 16);              (*  2 *)
      Insn.Movz (7, 0xFFFF, 0);                       (*  3 *)
      Insn.Movz (9, base land 0xFFFF, 0);             (*  4 *)
      Insn.Movk (9, base lsr 16, 16);                 (*  5 *)
      Insn.And_reg (8, 0, 7);                         (*  6: loop head *)
      Insn.Lsl_imm (8, 8, 5);                         (*  7 *)
      Insn.Orr_reg (10, 9, 8);                        (*  8 *)
      Insn.Str32 (10, 1, 4 * patch_idx);              (*  9 *)
      (if with_ic then Insn.Ic_iallu else Insn.Nop);  (* 10 *)
      Insn.Nop;                                       (* 11 *)
      Insn.Movz (5, 0, 0);                            (* 12: patch site *)
      Insn.Add (6, 6, Insn.Reg 5);                    (* 13 *)
      Insn.Sub (0, 0, Insn.Imm 1);                    (* 14 *)
      Insn.Cbnz (0, 4 * (6 - 15));                    (* 15 *)
      Insn.Brk 0 ]                                    (* 16 *)
  in
  List.iteri
    (fun i insn -> Phys.write32 phys (code_pa + (4 * i))
        (Encoding.encode insn))
    program;
  let core =
    Core.create ~fast ~blocks phys tlb Lz_cpu.Cost_model.cortex_a55
      Pstate.EL1
  in
  Sysreg.write core.Core.sys Sysreg.TTBR0_EL1 (Mmu.ttbr_value ~root ~asid:1);
  core.Core.pc <- code_va;
  (match Core.run ~max_insns:max_int core with
  | Core.Trap_el1 (Core.Ec_brk _) | Core.Trap_el2 (Core.Ec_brk _) -> ()
  | s -> Alcotest.failf "smc: unexpected stop %a" Core.pp_stop s);
  ( Array.init 31 (Core.reg core), core.Core.pc, core.Core.cycles,
    core.Core.insns, Tlb.hits tlb, Tlb.misses tlb )

let prop_smc_equivalent =
  QCheck2.Test.make
    ~name:"core: self-modifying code is engine-invariant (3-way)"
    ~count:15
    QCheck2.Gen.(pair (int_range 1 200) bool)
    (fun (iters, with_ic) ->
      let slow = smc_summary ~fast:false ~blocks:false ~iters ~with_ic in
      let fast = smc_summary ~fast:true ~blocks:false ~iters ~with_ic in
      let blk = smc_summary ~fast:true ~blocks:true ~iters ~with_ic in
      let (regs, _, _, insns, _, _) = slow in
      (* sanity: the patch actually took effect at least once *)
      regs.(6) > 0 && insns > 0 && slow = fast && slow = blk)

(* Preemption slices: drive each microbench under the generic timer
   with a random slice, servicing every tick harness-side, and require
   the three engines to agree bit-for-bit — interrupts must land at
   identical instruction boundaries (the interrupt-horizon guard). *)
let preempted_summary ~fast ~blocks ~iters ~slice name =
  let open Lz_workloads.Microbench in
  let env = build ~fast ~blocks ~iters name in
  let core = env.core in
  let iv = Core.attach_irq core in
  Lz_irq.Irq.init iv;
  Lz_irq.Timer.program iv.Lz_irq.Irq.timer ~now:core.Core.cycles ~slice;
  let ticks = ref 0 in
  let rec loop () =
    match Core.run ~max_insns:max_int core with
    | Core.Trap_el1 (Core.Ec_brk _) | Core.Trap_el2 (Core.Ec_brk _) -> ()
    | Core.Trap_el1 (Core.Ec_irq intid) ->
        ignore (Lz_irq.Irq.ack iv);
        if intid = Lz_irq.Gic.ppi_el1_timer then begin
          incr ticks;
          Lz_irq.Timer.program iv.Lz_irq.Irq.timer ~now:core.Core.cycles
            ~slice
        end;
        Core.quiesce_irq core intid;
        Lz_irq.Irq.eoi iv intid;
        Core.eret_from_el1 core;
        loop ()
    | s -> Alcotest.failf "preempt: unexpected stop %a" Core.pp_stop s
  in
  loop ();
  let buf = Buffer.create 4096 in
  List.iter
    (fun pa -> Buffer.add_bytes buf (Phys.read_bytes core.Core.phys pa 4096))
    env.data_pas;
  ( Array.init 31 (Core.reg core), core.Core.pc,
    Digest.string (Buffer.contents buf), core.Core.cycles, core.Core.insns,
    Tlb.hits core.Core.tlb, Tlb.misses core.Core.tlb, !ticks )

let prop_preempt_equivalent =
  QCheck2.Test.make
    ~name:"core: preemption slices are engine-invariant (3-way)"
    ~count:20
    QCheck2.Gen.(
      triple (oneofl Lz_workloads.Microbench.names) (int_range 20 200)
        (int_range 97 2_000))
    (fun (name, iters, slice) ->
      let slow = preempted_summary ~fast:false ~blocks:false ~iters ~slice
          name in
      let fast = preempted_summary ~fast:true ~blocks:false ~iters ~slice
          name in
      let blk = preempted_summary ~fast:true ~blocks:true ~iters ~slice
          name in
      (* tick counts are compared via the tuples; a short run with a
         long slice may legitimately see zero ticks *)
      slow = fast && slow = blk)

(* ------------------------------------------------------------------ *)
(* Trace-tree properties. The superblock engine folds biased
   conditional branches into blocks with side exits; these properties
   pin down the three invariants that make that sound:

   - the horizon invariant: everything the builder classifies as
     Straight/Cond/Chain is a pure register/memory/pc operation, so
     the interrupt-horizon inputs (DAIF, GIC, timer, PMU) can only
     move at Stop terminators and side exits never invalidate a
     computed horizon;
   - architectural invisibility under *retraining*: generated
     branch-heavy programs that flip branch bias mid-run (so trees
     form along one direction and must re-form along the other) stay
     bit-identical across slow / per-insn fast / blocks, with and
     without preemption slices (which may land inside side-exit
     stubs) and with tracing attached;
   - SMC at a side-exit target: a cross-page side-exit chain is
     revalidated against the *target* page's generation and the
     IC IALLU epoch, so patching the cold-path page severs it. *)

module Fastpath = Lz_cpu.Fastpath
module Trace = Lz_trace.Trace

let prop_ending_horizon_pure =
  QCheck2.Test.make
    ~name:"fastpath: only Stop terminators can move the interrupt horizon"
    ~count:5000 arbitrary_word (fun w ->
      let insn = Encoding.decode w in
      match Fastpath.ending_of insn with
      | Fastpath.Stop -> true
      | Fastpath.Cond _ -> (
          (* Cond must be exactly the foldable branches: a pc-relative
             conditional whose both outcomes are static. *)
          match insn with
          | Insn.Bcond _ | Insn.Cbz _ | Insn.Cbnz _ -> true
          | _ -> false)
      | Fastpath.Straight | Fastpath.Chain -> (
          (* Nothing that can touch DAIF, sysregs, the GIC/timer or
             cache/TLB maintenance may be folded into a block body. *)
          match insn with
          | Insn.Msr _ | Insn.Mrs _ | Insn.Msr_pstate _ | Insn.Svc _
          | Insn.Hvc _ | Insn.Smc _ | Insn.Brk _ | Insn.Eret | Insn.Wfi
          | Insn.Isb | Insn.Dsb | Insn.Tlbi_vmalle1 | Insn.Tlbi_aside1 _
          | Insn.At_s1e1r _ | Insn.Dc_civac _ | Insn.Ic_iallu
          | Insn.Udf _ ->
              false
          | _ -> true))

(* A tiny two-pass assembler with symbolic labels, so generated
   branchy programs don't hand-compute byte offsets. *)
type asm =
  | Lbl of int
  | Ins of Insn.t
  | Bc of Insn.cond * int
  | Cz of int * int
  | Cnz of int * int
  | Jmp of int

let assemble items =
  let n_labels =
    List.fold_left
      (fun a -> function Lbl l -> max a (l + 1) | _ -> a)
      0 items
  in
  let addr = Array.make (max n_labels 1) 0 in
  let idx = ref 0 in
  List.iter (function Lbl l -> addr.(l) <- !idx | _ -> incr idx) items;
  let out = ref [] and i = ref 0 in
  List.iter
    (fun it ->
      let off l = 4 * (addr.(l) - !i) in
      (match it with
      | Lbl _ -> ()
      | Ins insn -> out := insn :: !out
      | Bc (c, l) -> out := Insn.Bcond (c, off l) :: !out
      | Cz (r, l) -> out := Insn.Cbz (r, off l) :: !out
      | Cnz (r, l) -> out := Insn.Cbnz (r, off l) :: !out
      | Jmp l -> out := Insn.B (off l) :: !out);
      match it with Lbl _ -> () | _ -> incr i)
    items;
  List.rev !out

(* Branch-heavy loop bodies whose bias *changes* mid-run. [Phase]
   compares the countdown register against a flip point, so the branch
   goes one way for the first part of the run and permanently flips;
   [MaskZ] tests masked bits of the counter, giving periodic cold
   directions (the nginx pattern). Both arms do distinct arithmetic
   and memory traffic so any stale-tree bug lands in the summary. *)
type seg =
  | Phase of bool * int * int * int  (* ge?, flip point, k_then, k_else *)
  | MaskZ of bool * int * int * int  (* cbz?, mask, k_then, k_else *)

let branchy_code_va = 0x10000
let branchy_data_va = 0x20000

let branchy_items segs iters =
  let next = ref 1 in
  let seg_items s =
    let le = !next and lj = !next + 1 in
    next := !next + 2;
    match s with
    | Phase (ge, flip, k1, k2) ->
        [ Ins (Insn.Subs (9, 0, Insn.Imm flip));
          Bc ((if ge then Insn.GE else Insn.LT), le);
          Ins (Insn.Add (5, 5, Insn.Imm k1));
          Ins (Insn.Str (5, 1, 8));
          Jmp lj;
          Lbl le;
          Ins (Insn.Add (6, 6, Insn.Imm k2));
          Ins (Insn.Ldr (4, 1, 0));
          Lbl lj ]
    | MaskZ (z, mask, k1, k2) ->
        [ Ins (Insn.Movz (7, mask, 0));
          Ins (Insn.And_reg (8, 0, 7));
          (if z then Cz (8, le) else Cnz (8, le));
          Ins (Insn.Add (5, 5, Insn.Imm k1));
          Jmp lj;
          Lbl le;
          Ins (Insn.Add (6, 6, Insn.Imm k2));
          Ins (Insn.Str (6, 1, 16));
          Lbl lj ]
  in
  [ Ins (Insn.Movz (0, iters, 0));
    Ins (Insn.Movz (1, branchy_data_va land 0xFFFF, 0));
    Ins (Insn.Movk (1, branchy_data_va lsr 16, 16));
    Lbl 0 ]
  @ List.concat_map seg_items segs
  @ [ Ins (Insn.Sub (0, 0, Insn.Imm 1)); Cnz (0, 0); Ins (Insn.Brk 0) ]

let seg_gen =
  QCheck2.Gen.(
    oneof
      [ map4
          (fun ge flip k1 k2 -> Phase (ge, flip, k1 + 1, k2 + 1))
          bool (int_bound 400) (int_bound 62) (int_bound 62);
        map4
          (fun z m k1 k2 -> MaskZ (z, [| 1; 3; 7; 15 |].(m), k1 + 1, k2 + 1))
          bool (int_bound 3) (int_bound 62) (int_bound 62) ])

let branchy_env ?tracer ~fast ~blocks prog =
  let phys = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root phys in
  let code_pa = Phys.alloc_frame phys in
  let data_pa = Phys.alloc_frame phys in
  Stage1.map_page phys ~root ~va:branchy_code_va ~pa:code_pa
    { Pte.user = false; read_only = true; uxn = true; pxn = false;
      ng = true };
  Stage1.map_page phys ~root ~va:branchy_data_va ~pa:data_pa
    { Pte.user = false; read_only = false; uxn = true; pxn = true;
      ng = true };
  List.iteri
    (fun i insn ->
      Phys.write32 phys (code_pa + (4 * i)) (Encoding.encode insn))
    prog;
  let core =
    Core.create ~fast ~blocks phys tlb Lz_cpu.Cost_model.cortex_a55
      Pstate.EL1
  in
  (match tracer with
  | Some tr -> Core.set_tracer core (Some tr)
  | None -> ());
  Sysreg.write core.Core.sys Sysreg.TTBR0_EL1 (Mmu.ttbr_value ~root ~asid:1);
  core.Core.pc <- branchy_code_va;
  (core, data_pa)

let branchy_finish (core, data_pa) =
  ( Array.init 31 (Core.reg core), core.Core.pc,
    Digest.bytes (Phys.read_bytes core.Core.phys data_pa 4096),
    core.Core.cycles, core.Core.insns, Tlb.hits core.Core.tlb,
    Tlb.misses core.Core.tlb )

let branchy_summary ?tracer ~fast ~blocks prog =
  let ((core, _) as env) = branchy_env ?tracer ~fast ~blocks prog in
  (match Core.run ~max_insns:max_int core with
  | Core.Trap_el1 (Core.Ec_brk _) | Core.Trap_el2 (Core.Ec_brk _) -> ()
  | s -> Alcotest.failf "branchy: unexpected stop %a" Core.pp_stop s);
  branchy_finish env

let prop_branchy_equivalent =
  QCheck2.Test.make
    ~name:"core: trace trees are invisible under branch-bias flips (3-way)"
    ~count:40
    QCheck2.Gen.(pair (list_size (int_range 1 4) seg_gen) (int_range 1 400))
    (fun (segs, iters) ->
      let prog = assemble (branchy_items segs iters) in
      let slow = branchy_summary ~fast:false ~blocks:false prog in
      let fast = branchy_summary ~fast:true ~blocks:false prog in
      let blk = branchy_summary ~fast:true ~blocks:true prog in
      slow = fast && slow = blk)

(* Preemption slices landing anywhere — including inside a side-exit
   stub, between a block's early exit and the dispatcher's re-entry —
   must deliver the IRQ at the identical instruction boundary as the
   per-insn engines (the PR 4 transparency property, extended to
   trace trees over the branchy generator). *)
let branchy_preempted_summary ~fast ~blocks ~slice prog =
  let ((core, _) as env) = branchy_env ~fast ~blocks prog in
  let iv = Core.attach_irq core in
  Lz_irq.Irq.init iv;
  Lz_irq.Timer.program iv.Lz_irq.Irq.timer ~now:core.Core.cycles ~slice;
  let ticks = ref 0 in
  let rec loop () =
    match Core.run ~max_insns:max_int core with
    | Core.Trap_el1 (Core.Ec_brk _) | Core.Trap_el2 (Core.Ec_brk _) -> ()
    | Core.Trap_el1 (Core.Ec_irq intid) ->
        ignore (Lz_irq.Irq.ack iv);
        if intid = Lz_irq.Gic.ppi_el1_timer then begin
          incr ticks;
          Lz_irq.Timer.program iv.Lz_irq.Irq.timer ~now:core.Core.cycles
            ~slice
        end;
        Core.quiesce_irq core intid;
        Lz_irq.Irq.eoi iv intid;
        Core.eret_from_el1 core;
        loop ()
    | s -> Alcotest.failf "branchy preempt: unexpected stop %a" Core.pp_stop s
  in
  loop ();
  let summary = branchy_finish env in
  (summary, !ticks)

let prop_branchy_preempt_equivalent =
  QCheck2.Test.make
    ~name:"core: preemption inside side-exit stubs is engine-invariant"
    ~count:20
    QCheck2.Gen.(
      triple (list_size (int_range 1 3) seg_gen) (int_range 20 300)
        (int_range 97 1500))
    (fun (segs, iters, slice) ->
      let prog = assemble (branchy_items segs iters) in
      let slow = branchy_preempted_summary ~fast:false ~blocks:false ~slice
          prog in
      let fast = branchy_preempted_summary ~fast:true ~blocks:false ~slice
          prog in
      let blk = branchy_preempted_summary ~fast:true ~blocks:true ~slice
          prog in
      slow = fast && slow = blk)

(* Block-aware traced dispatch: with PC markers planted at random
   instructions of the code page, the blocks engine must emit the
   exact event stream (same payloads, same order, same cycle stamps)
   as the per-insn fast path, on top of an identical summary. *)
let prop_branchy_traced_equivalent =
  QCheck2.Test.make
    ~name:"core: block-aware tracing emits identical event streams"
    ~count:25
    QCheck2.Gen.(
      triple (list_size (int_range 1 3) seg_gen) (int_range 1 300)
        (list_size (int_range 1 4) (int_bound 40)))
    (fun (segs, iters, marks) ->
      let prog = assemble (branchy_items segs iters) in
      let n = List.length prog in
      let run blocks =
        let tr = Trace.create ~capacity:100_000 () in
        List.iteri
          (fun i idx ->
            Trace.add_marker tr
              ~pc:(branchy_code_va + (4 * (idx mod n)))
              (Trace.Syscall { nr = i }))
          marks;
        let s = branchy_summary ~tracer:tr ~fast:true ~blocks prog in
        ( s,
          List.map
            (fun (e : Trace.event) -> (e.Trace.seq, e.Trace.cycles, e.Trace.payload))
            (Trace.events tr) )
      in
      run false = run true)

(* SMC at a cross-page side-exit target. Page A's loop folds a
   mostly-not-taken CBZ whose cold direction branches onto page B;
   page B patches its own first instruction (the one the side-exit
   chain would re-enter) with a value derived from the live counter,
   optionally IC IALLU, and jumps back. A side-exit chain memo that
   skips revalidating the *target* page's generation (or the IALLU
   epoch) replays the stale decode and shifts the accumulator. *)
let sx_smc_summary ~fast ~blocks ~iters ~with_ic =
  let page_a = 0x10000 and page_b = 0x11000 in
  let phys = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root phys in
  let pa_a = Phys.alloc_frame phys in
  let pa_b = Phys.alloc_frame phys in
  let wx va pa =
    Stage1.map_page phys ~root ~va ~pa
      { Pte.user = false; read_only = false; uxn = true; pxn = false;
        ng = true }
  in
  wx page_a pa_a;
  wx page_b pa_b;
  let base = Encoding.encode (Insn.Movz (5, 0, 0)) in
  let prog_a =
    [ Insn.Movz (0, iters, 0);                      (*  0 *)
      Insn.Movz (1, page_b land 0xFFFF, 0);         (*  1 *)
      Insn.Movk (1, page_b lsr 16, 16);             (*  2 *)
      Insn.Movz (9, base land 0xFFFF, 0);           (*  3 *)
      Insn.Movk (9, base lsr 16, 16);               (*  4 *)
      Insn.Movz (7, 3, 0);                          (*  5 *)
      Insn.And_reg (8, 0, 7);                       (*  6: loop head *)
      Insn.Cbz (8, page_b - (page_a + (4 * 7)));    (*  7: cold, cross-page *)
      Insn.Add (6, 6, Insn.Reg 5);                  (*  8: cont *)
      Insn.Sub (0, 0, Insn.Imm 1);                  (*  9 *)
      Insn.Cbnz (0, 4 * (6 - 10));                  (* 10 *)
      Insn.Brk 0 ]                                  (* 11 *)
  in
  let prog_b =
    [ Insn.Movz (5, 0, 0);                          (* b0: patch site *)
      Insn.Movz (11, 0xFF, 0);                      (* b1 *)
      Insn.And_reg (12, 0, 11);                     (* b2 *)
      Insn.Lsl_imm (12, 12, 5);                     (* b3 *)
      Insn.Orr_reg (12, 9, 12);                     (* b4 *)
      Insn.Str32 (12, 1, 0);                        (* b5: patch b0 *)
      (if with_ic then Insn.Ic_iallu else Insn.Nop);(* b6 *)
      Insn.B (page_a + (4 * 8) - (page_b + (4 * 7))) ]  (* b7: back to cont *)
  in
  let load pa prog =
    List.iteri
      (fun i insn ->
        Phys.write32 phys (pa + (4 * i)) (Encoding.encode insn))
      prog
  in
  load pa_a prog_a;
  load pa_b prog_b;
  let core =
    Core.create ~fast ~blocks phys tlb Lz_cpu.Cost_model.cortex_a55
      Pstate.EL1
  in
  Sysreg.write core.Core.sys Sysreg.TTBR0_EL1 (Mmu.ttbr_value ~root ~asid:1);
  core.Core.pc <- page_a;
  (match Core.run ~max_insns:max_int core with
  | Core.Trap_el1 (Core.Ec_brk _) | Core.Trap_el2 (Core.Ec_brk _) -> ()
  | s -> Alcotest.failf "sx smc: unexpected stop %a" Core.pp_stop s);
  if blocks && iters >= 64 then begin
    let st = Fastpath.stats core.Core.fp in
    if st.Fastpath.folds = 0 || st.Fastpath.side_exits = 0 then
      Alcotest.failf
        "sx smc: expected folded branches with side exits (entries=%d \
         builds=%d hits=%d folds=%d side_exits=%d retrains=%d iters=%d \
         ic=%b)"
        st.Fastpath.blk_entries st.Fastpath.blk_builds st.Fastpath.blk_hits
        st.Fastpath.folds st.Fastpath.side_exits st.Fastpath.retrains iters
        with_ic
  end;
  ( Array.init 31 (Core.reg core), core.Core.pc, core.Core.cycles,
    core.Core.insns, Tlb.hits tlb, Tlb.misses tlb )

let prop_sx_smc_equivalent =
  QCheck2.Test.make
    ~name:"core: SMC at a cross-page side-exit target severs the chain"
    ~count:15
    QCheck2.Gen.(pair (int_range 8 200) bool)
    (fun (iters, with_ic) ->
      let slow = sx_smc_summary ~fast:false ~blocks:false ~iters ~with_ic in
      let fast = sx_smc_summary ~fast:true ~blocks:false ~iters ~with_ic in
      let blk = sx_smc_summary ~fast:true ~blocks:true ~iters ~with_ic in
      let (regs, _, _, _, _, _) = slow in
      regs.(6) > 0 && slow = fast && slow = blk)

(* ------------------------------------------------------------------ *)
(* Fault-around equivalence: clustering demand faults (and the
   spurious-fault revalidation) is a pure cost optimisation. For any
   random access pattern over a multi-page VMA, running with
   fault-around on (kernel-wide or as a per-VMA override) must produce
   the same exit code, the same final registers and the same retired
   instruction count as the strict one-page-per-fault path; only the
   cycle count may move. *)

let fa_data_va = 0x600000
let fa_pages = 12

let run_fault_around_case ~around ~override ~spurious probes =
  let machine = Lz_kernel.Machine.create () in
  let kernel = Lz_kernel.Kernel.create machine Lz_kernel.Kernel.Host_vhe in
  let proc = Lz_kernel.Kernel.create_process kernel in
  ignore (Lz_kernel.Kernel.map_anon kernel proc ~at:(stack_va - 0x10000)
            ~len:0x10000 Lz_kernel.Vma.rw);
  ignore (Lz_kernel.Kernel.map_anon kernel proc ~at:fa_data_va
            ~len:(fa_pages * 4096) Lz_kernel.Vma.rw);
  if around > 1 then
    if override then
      (match Lz_kernel.Proc.find_vma proc fa_data_va with
      | Some vma -> vma.Lz_kernel.Vma.fault_around <- Some around
      | None -> assert false)
    else kernel.Lz_kernel.Kernel.fault_around <- around;
  kernel.Lz_kernel.Kernel.spurious_fast <- spurious;
  let addr_of idx =
    [ Lz_arm.Insn.Movz (0, 0x60, 0); Lz_arm.Insn.Lsl_imm (0, 0, 16);
      Lz_arm.Insn.Movz (1, idx * 4096, 0);
      Lz_arm.Insn.Add (0, 0, Lz_arm.Insn.Reg 1) ]
  in
  let writes =
    List.concat_map
      (fun (idx, v) ->
        addr_of idx
        @ [ Lz_arm.Insn.Movz (2, v, 0); Lz_arm.Insn.Str (2, 0, 0) ])
      probes
  in
  let reads =
    List.concat_map
      (fun (idx, _) ->
        addr_of idx
        @ [ Lz_arm.Insn.Ldr (3, 0, 0);
            Lz_arm.Insn.Add (4, 4, Lz_arm.Insn.Reg 3) ])
      probes
  in
  let prog =
    writes @ reads
    @ [ Lz_arm.Insn.Movz (8, Lz_kernel.Kernel.Nr.exit, 0);
        Lz_arm.Insn.Mov_reg (0, 4); Lz_arm.Insn.Svc 0 ]
  in
  Lz_kernel.Kernel.load_program kernel proc ~va:code_va prog;
  let core =
    Lz_kernel.Kernel.new_user_core kernel proc ~entry:code_va ~sp:stack_va
  in
  let outcome = Lz_kernel.Kernel.run kernel proc core in
  (outcome, Array.copy core.Lz_cpu.Core.regs)

let prop_fault_around_equivalent =
  QCheck2.Test.make
    ~name:"kernel: fault-around clustering is architecturally invisible"
    ~count:60
    ~print:(fun (probes, (around, override, spurious)) ->
      Printf.sprintf "probes=[%s] around=%d override=%b spurious=%b"
        (String.concat "; "
           (List.map (fun (i, v) -> Printf.sprintf "(%d,%d)" i v) probes))
        around override spurious)
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 10)
           (pair (int_bound (fa_pages - 1)) (int_bound 50)))
        (triple (int_range 2 16) bool bool))
    (fun (probes, (around, override, spurious)) ->
      let base = run_fault_around_case ~around:1 ~override:false
          ~spurious:false probes
      in
      let fa = run_fault_around_case ~around ~override ~spurious probes in
      let (o1, r1) = base and (o2, r2) = fa in
      (* [insns] counts execution attempts, so avoided fault retries
         legitimately lower it; everything the program can observe —
         outcome (the read-back sum) and final registers — must be
         bit-identical. *)
      o1 = o2 && r1 = r2)

(* ------------------------------------------------------------------ *)
(* ASID recycling transparency *)

(* The same tenant-churn script runs on two modules: one with a
   deliberately tiny ASID space — generation rollovers and
   whole-context flushes fire mid-churn — and a full 14-bit oracle
   where every table gets a fresh ASID. Recycling must be
   architecturally invisible: outcome, pc, instruction count, zone
   data and final registers agree bit-for-bit. Two exclusions, both
   inherent to what recycling is: the ASID field (bits 48+) is masked
   out of registers, because gate scratch registers legitimately hold
   the TTBR value just installed and its ASID differs by construction;
   cycles and TLB statistics are not digested, because rollover
   flushes legitimately cost refills. Runs across the fast engines and
   under preemption slices. *)

let asid_field_mask = lnot (0x3FFF lsl Mmu.asid_shift)

let churn_digest ~asid_bits ~fast ~blocks ~churn ~slice =
  let machine = Lz_kernel.Machine.create () in
  let kernel = Lz_kernel.Kernel.create machine Lz_kernel.Kernel.Host_vhe in
  let proc = Lz_kernel.Kernel.create_process kernel in
  ignore (Lz_kernel.Kernel.map_anon kernel proc ~at:(stack_va - 0x10000)
            ~len:0x10000 Lz_kernel.Vma.rw);
  ignore (Lz_kernel.Kernel.map_anon kernel proc ~at:domains_va ~len:0x2000
            Lz_kernel.Vma.rw);
  let t =
    Kmod.enter ~asid_bits ~allow_scalable:true
      ~san_mode:Sanitizer.Ttbr_mode ~vmid:0x200 ~entry:code_va ~sp:stack_va
      kernel proc
  in
  let core = t.Kmod.core in
  Core.set_fast core fast;
  Core.set_blocks core blocks;
  (* A long-lived tenant parked across the churn, and one allocated
     after it — the latter's table carries a recycled ASID in the
     small space and a fresh one in the oracle. *)
  let survivor = Api.lz_alloc t in
  Api.lz_map_gate_pgt t ~pgt:survivor ~gate:0;
  Api.lz_prot t ~addr:domains_va ~len:4096 ~pgt:survivor
    ~perm:(Perm.read lor Perm.write);
  for _ = 1 to churn do
    let id = Api.lz_alloc t in
    Api.lz_free t id
  done;
  let late = Api.lz_alloc t in
  Api.lz_map_gate_pgt t ~pgt:late ~gate:1;
  Api.lz_prot t ~addr:(domains_va + 4096) ~len:4096 ~pgt:late
    ~perm:(Perm.read lor Perm.write);
  if slice > 0 then begin
    let iv = Core.attach_irq core in
    Lz_irq.Irq.init iv;
    t.Kmod.on_irq <-
      Some
        (fun core intid ->
          if intid = Lz_irq.Gic.ppi_el1_timer then
            Lz_irq.Timer.program iv.Lz_irq.Irq.timer ~now:core.Core.cycles
              ~slice);
    Lz_irq.Timer.program iv.Lz_irq.Irq.timer ~now:core.Core.cycles ~slice
  end;
  let b = Builder.create ~base:code_va in
  Builder.switch_gate b ~gate:0;
  Builder.mov_imm64 b 0 domains_va;
  Builder.emit b
    (List.concat
       (List.init 24 (fun i ->
            [ Insn.Movz (1, 100 + i, 0); Insn.Str (1, 0, 8 * (i mod 8));
              Insn.Ldr (2, 0, 8 * (i mod 8)) ])));
  Builder.switch_gate b ~gate:1;
  Builder.mov_imm64 b 0 (domains_va + 4096);
  Builder.emit b
    (List.concat
       (List.init 8 (fun i ->
            [ Insn.Movz (3, 500 + i, 0); Insn.Str (3, 0, 8 * i);
              Insn.Ldr (4, 0, 8 * i) ])));
  Builder.emit b [ Insn.Brk 0 ];
  Api.load_and_register t b ~va:code_va;
  let outcome = Kmod.run t in
  let regs =
    Array.init 31 (fun i -> Core.reg core i land asid_field_mask)
  in
  ( Format.asprintf "%a" Kmod.pp_outcome outcome, regs, core.Core.pc,
    core.Core.insns )

let prop_asid_recycling_transparent =
  QCheck2.Test.make
    ~name:"lightzone: ASID recycling is architecturally invisible"
    ~count:6
    ~print:(fun (churn, (fast, blocks), slice) ->
      Printf.sprintf "churn=%d fast=%b blocks=%b slice=%d" churn fast blocks
        slice)
    QCheck2.Gen.(
      triple (int_range 20 120)
        (oneofl [ (false, false); (true, false); (true, true) ])
        (oneofl [ 0; 0; 53; 131 ]))
    (fun (churn, (fast, blocks), slice) ->
      let small = churn_digest ~asid_bits:4 ~fast ~blocks ~churn ~slice in
      let oracle = churn_digest ~asid_bits:14 ~fast ~blocks ~churn ~slice in
      small = oracle)

let () =
  Alcotest.run "lz_props"
    [ ( "sanitizer",
        [ q prop_sanitizer_blocks_ttbr_writes;
          q prop_sanitizer_blocks_eret;
          q prop_sanitizer_pan_mode_blocks_unpriv;
          q prop_sanitizer_allows_plain_code ] );
      ( "mmu",
        [ q prop_pan_only_removes;
          q prop_read_only_blocks_writes;
          q prop_el0_needs_user;
          q prop_el1_never_executes_user_pages ] );
      ( "stage1", [ q prop_s1_model_agreement ] );
      ( "tlb", [ q prop_tlb_transparent ] );
      ( "fastpath",
        [ q prop_fast_slow_equivalent;
          q prop_smc_equivalent;
          q prop_preempt_equivalent ] );
      ( "trace-trees",
        [ q prop_ending_horizon_pure;
          q prop_branchy_equivalent;
          q prop_branchy_preempt_equivalent;
          q prop_branchy_traced_equivalent;
          q prop_sx_smc_equivalent ] );
      ( "fault-around", [ q prop_fault_around_equivalent ] );
      ( "aes", [ q prop_aes_roundtrip; q prop_aes_cbc_roundtrip ] );
      ( "lightzone",
        [ q prop_lz_policy; q prop_asid_recycling_transparent ] ) ]
