(* Tests for the multi-core machine (lib/smp): the sequential-oracle ≡
   parallel-domains determinism property across core counts, quantum
   sizes and engines; the SGI-driven TLB shootdown protocol (a stale
   translation on a remote core survives exactly until the DVM
   completion, then faults); IRM broadcast vs targeted SGIs; whole-
   machine snapshot/restore; and two cores running the Table 5 gate
   workload concurrently with per-core PMU and span attribution. *)

open Lz_arm
open Lz_mem
open Lz_cpu
open Lz_kernel
open Lightzone

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let q = QCheck_alcotest.to_alcotest

module Gic = Lz_irq.Gic
module Irq = Lz_irq.Irq
module Smp = Lz_smp.Smp
module Trace = Lz_trace.Trace
module Span = Lz_trace.Span

(* ------------------------------------------------------------------ *)
(* Workload: an independent per-core compute process. Eight data pages
   cycled by a store/load/xor loop; page 0 is pre-populated (so the
   leaf table exists), pages 1..7 demand-fault at runtime from the
   slot's private frame pool — exercising deterministic parallel
   demand paging, not just pre-populated memory. *)

let code_va = 0x400000
let data_va = 0x600000
let stack_top = 0x7F0000010000

let compute_program ~iters ~mark =
  let open Insn in
  [ Movz (4, 7, 0);
    Movz (1, iters, 0);
    Movz (9, 0, 0);
    Movz (0, data_va lsr 16, 16);
    (* loop: rotate across the 8 pages, store the counter, read it
       back, fold into x9. *)
    And_reg (3, 1, 4);
    Lsl_imm (3, 3, 12);
    Add (3, 0, Reg 3);
    Str (1, 3, 0);
    Ldr (5, 3, 0);
    Eor_reg (9, 9, 5);
    Subs (1, 1, Imm 1);
    Bcond (NE, -28);
    Movz (8, Kernel.Nr.exit, 0);
    Movz (0, mark, 0);
    Svc 0 ]

let build_compute ?fast ?blocks ~cores ~quantum ~iters () =
  let t = Smp.create ?fast ?blocks ~cores ~quantum () in
  for i = 0 to cores - 1 do
    let kernel = Kernel.create (Smp.slot_machine t i) Kernel.Host_vhe in
    let proc = Kernel.create_process kernel in
    ignore (Kernel.map_anon kernel proc ~at:data_va ~len:0x8000 Vma.rw);
    ignore
      (Kernel.map_anon kernel proc ~at:(stack_top - 0x10000) ~len:0x10000
         Vma.rw);
    Kernel.load_program kernel proc ~va:code_va
      (compute_program ~iters:(iters + (29 * i)) ~mark:(40 + i));
    Kernel.populate kernel proc ~start:data_va ~len:0x1000;
    Smp.assign ~pool:16 t i kernel proc ~entry:code_va ~sp:stack_top
  done;
  t

let outcome_str = function
  | Kernel.Exited c -> Printf.sprintf "exited:%d" c
  | Kernel.Segv why -> "segv:" ^ why
  | Kernel.Limit_reached -> "limit"

let outcomes_str os =
  String.concat ","
    (List.map (fun (i, o) -> Printf.sprintf "%d=%s" i (outcome_str o)) os)

(* ------------------------------------------------------------------ *)
(* Tentpole property: the parallel drive (one host domain per core)
   is bit-identical to the sequential oracle — same outcomes, same
   per-core architectural digests, same merged traced event stream —
   across 1/2/4 cores, two quantum sizes, blocks on and off. *)

let prop_seq_par_identical =
  QCheck2.Test.make
    ~name:"parallel domains ≡ sequential oracle (digest + trace)"
    ~count:12
    QCheck2.Gen.(
      quad (oneofl [ 1; 2; 4 ]) (oneofl [ 2_000; 7_919 ]) bool
        (int_range 60 400))
    (fun (cores, quantum, blocks, iters) ->
      let a = build_compute ~fast:true ~blocks ~cores ~quantum ~iters () in
      let b = build_compute ~fast:true ~blocks ~cores ~quantum ~iters () in
      let oa = Smp.run ~parallel:false a in
      let ob = Smp.run ~parallel:true b in
      oa = ob
      && Smp.digests a = Smp.digests b
      && Smp.merged_trace a = Smp.merged_trace b)

(* The existing three-way engine differential, per core: the slow,
   per-instruction and superblock engines agree on every core's final
   architectural digest (cycles and retired counts included). *)
let prop_engine_differential =
  QCheck2.Test.make ~name:"slow ≡ per-insn ≡ blocks, per core" ~count:6
    QCheck2.Gen.(
      triple (oneofl [ 2; 4 ]) (oneofl [ 2_000; 7_919 ]) (int_range 60 300))
    (fun (cores, quantum, iters) ->
      let run ~fast ~blocks =
        let t = build_compute ~fast ~blocks ~cores ~quantum ~iters () in
        let os = Smp.run t in
        (os, Smp.digests t)
      in
      let slow = run ~fast:false ~blocks:false in
      let per_insn = run ~fast:true ~blocks:false in
      let blocks = run ~fast:true ~blocks:true in
      slow = per_insn && per_insn = blocks)

(* ------------------------------------------------------------------ *)
(* Shootdown regression: core 0 munmaps a page both cores share; core
   1 keeps loading it through its (now stale) TLB entry and must keep
   succeeding until the DVM shootdown reaches it — and fault on the
   first access after. Sequential mode, pinned counters. *)

let quantum = 1_000
let victim_va = data_va (* page A: unmapped by core 0 *)
let flag_va = data_va + 0x1000 (* page B: core 1's progress counter *)
let code1_va = 0x410000

(* Core 0: spin well past two quanta, munmap page A, exit 0. *)
let unmapper_program ~delay ~munmap =
  let open Insn in
  [ Movz (1, delay, 0); Subs (1, 1, Imm 1); Bcond (NE, -4) ]
  @ (if munmap then
       [ Movz (0, victim_va lsr 16, 16);
         Movz (1, 0x1000, 0);
         Movz (8, Kernel.Nr.munmap, 0);
         Svc 0 ]
     else [])
  @ [ Movz (8, Kernel.Nr.exit, 0); Movz (0, 0, 0); Svc 0 ]

(* Core 1: load page A forever, bumping a counter in page B. *)
let reader_program =
  let open Insn in
  [ Movz (0, victim_va lsr 16, 16);
    Movz (11, 0x1000, 0);
    Add (10, 0, Reg 11);
    Movz (9, 0, 0);
    Ldr (5, 0, 0);
    Add (9, 9, Imm 1);
    Str (9, 10, 0);
    B (-12) ]

let build_shootdown ~munmap () =
  let t = Smp.create ~cores:2 ~quantum () in
  let kernel = Kernel.create (Smp.slot_machine t 0) Kernel.Host_vhe in
  let proc = Kernel.create_process kernel in
  (* Separate one-page VMAs: the munmap must remove page A's mapping
     outright, not leave a larger VMA to demand-page it back in. *)
  ignore (Kernel.map_anon kernel proc ~at:victim_va ~len:0x1000 Vma.rw);
  ignore (Kernel.map_anon kernel proc ~at:flag_va ~len:0x1000 Vma.rw);
  Kernel.load_program kernel proc ~va:code_va
    (unmapper_program ~delay:1_500 ~munmap);
  Kernel.load_program kernel proc ~va:code1_va reader_program;
  Kernel.populate kernel proc ~start:data_va ~len:0x2000;
  (* Thread-style: both cores share the kernel, the process and its
     page tables; each has its own TLB. *)
  Smp.assign ~pool:0 t 0 kernel proc ~entry:code_va ~sp:stack_top;
  Smp.assign ~pool:0 t 1 kernel proc ~entry:code1_va ~sp:stack_top;
  t

let test_shootdown_stale_tlb () =
  let t = build_shootdown ~munmap:true () in
  let os = Smp.run ~max_insns:60_000 t in
  (match List.assoc 0 os with
  | Kernel.Exited 0 -> ()
  | o -> Alcotest.failf "core 0: %s" (outcome_str o));
  (match List.assoc 1 os with
  | Kernel.Segv _ -> ()
  | o -> Alcotest.failf "core 1 should fault after shootdown: %s"
           (outcome_str o));
  let s0 = Smp.slot t 0 and s1 = Smp.slot t 1 in
  (* Exactly one shootdown: initiated by core 0, applied by core 1,
     with core 0 stalled on the DVM completion for >= 1 barrier. *)
  check_int "core 0 initiated one shootdown" 1 s0.Smp.sd_sent;
  check_int "core 1 applied one remote invalidation" 1 s1.Smp.sd_received;
  check_bool "core 0 stalled on completion" true (s0.Smp.stall_barriers >= 1);
  check_bool "core 0 resumed (no residual stall)" true
    (not s0.Smp.core.Core.stall && s0.Smp.awaiting = 0);
  (* The stale window: core 0's delay spans > 2 quanta, so the munmap
     lands in quantum 3+; core 1 keeps loading through its stale entry
     to the end of that quantum and only faults after taking the
     shootdown IPI in the next one. *)
  check_bool "core 1 survived past three quanta" true
    (s1.Smp.core.Core.cycles > 3 * quantum);
  let reads = Core.reg s1.Smp.core 9 in
  check_bool "core 1 made progress through the stale entry" true (reads > 100);
  check_int "counter page saw every successful iteration" reads
    (match Proc.mapped_pa (Option.get s1.Smp.proc) ~va:flag_va with
     | Some pa -> Phys.read64 s1.Smp.view pa
     | None -> Alcotest.fail "flag page unmapped")

(* Control: without the munmap there is no shootdown and core 1 never
   faults — the fault above is caused by the shootdown alone. *)
let test_shootdown_control () =
  let t = build_shootdown ~munmap:false () in
  let os = Smp.run ~max_insns:60_000 t in
  (match List.assoc 1 os with
  | Kernel.Limit_reached -> ()
  | o -> Alcotest.failf "core 1 without munmap: %s" (outcome_str o));
  let s0 = Smp.slot t 0 and s1 = Smp.slot t 1 in
  check_int "no shootdowns" 0 s0.Smp.sd_sent;
  check_int "none received" 0 s1.Smp.sd_received

(* The stale-window run is itself deterministic across drive modes. *)
let test_shootdown_seq_par_identical () =
  let a = build_shootdown ~munmap:true () in
  let b = build_shootdown ~munmap:true () in
  let oa = Smp.run ~parallel:false ~max_insns:60_000 a in
  let ob = Smp.run ~parallel:true ~max_insns:60_000 b in
  check_bool "outcomes identical" true (oa = ob);
  check_bool "digests identical" true (Smp.digests a = Smp.digests b);
  check_bool "traces identical" true
    (Smp.merged_trace a = Smp.merged_trace b)

(* ------------------------------------------------------------------ *)
(* ICC_SGI1R_EL1 routing across >= 3 cores: targeted SGIs follow the
   target list; the IRM bit (bit 40) broadcasts to every core except
   the sender, ignoring the target list. *)

let test_sgi_irm_broadcast () =
  let d = Gic.create_dist () in
  let cpus = List.init 3 (fun _ -> Gic.attach_cpu d) in
  Gic.set_group_enable d true;
  List.iter
    (fun c ->
      Gic.unmask c;
      Gic.enable c 5;
      Gic.set_priority c 5 0x80)
    cpus;
  let c0, c1, c2 =
    match cpus with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  let drain c = match Gic.signaled c with
    | Some i -> ignore (Gic.acknowledge c); Gic.eoi c i; true
    | None -> false
  in
  (* Targeted: core 0 -> core 2 only. *)
  Gic.write_sgi1r c0 ((5 lsl 24) lor 0b100);
  check_bool "targeted: not self" false (drain c0);
  check_bool "targeted: not core 1" false (drain c1);
  check_bool "targeted: core 2" true (drain c2);
  (* Broadcast (IRM, bit 40): core 1 -> everyone but core 1, even with
     a target list naming only the sender. *)
  Gic.write_sgi1r c1 ((1 lsl 40) lor (5 lsl 24) lor 0b010);
  check_bool "irm: core 0" true (drain c0);
  check_bool "irm: never self" false (drain c1);
  check_bool "irm: core 2" true (drain c2)

(* ------------------------------------------------------------------ *)
(* Whole-machine snapshot/restore: capture a 2-core machine mid-run,
   finish it, restore, finish again — and compare against a machine
   that ran uninterrupted. *)

let test_snapshot_restore_run () =
  let build () = build_compute ~cores:2 ~quantum:2_000 ~iters:500 () in
  let a = build () in
  (match Smp.run ~max_insns:2_000 a with
  | os when List.for_all (fun (_, o) -> o = Kernel.Limit_reached) os -> ()
  | os -> Alcotest.failf "expected mid-run stop, got %s" (outcomes_str os));
  let img = Smp.capture a in
  let o1 = Smp.run a in
  let d1 = Smp.digests a in
  Smp.restore a img;
  let o2 = Smp.run a in
  let d2 = Smp.digests a in
  Smp.release a img;
  check_bool "restored run: same outcomes" true (o1 = o2);
  check_bool "restored run: same digests" true (d1 = d2);
  let c = build () in
  let oc = Smp.run c in
  check_bool "uninterrupted run: same outcomes" true (o1 = oc);
  check_bool "uninterrupted run: same digests" true (d1 = Smp.digests c)

(* ------------------------------------------------------------------ *)
(* Two cores running the Table 5 gate workload concurrently (shared
   zone, two threads via Kmod.new_thread, interleaved slices): each
   core's tracer reports ~100% span coverage over its own cycles, the
   per-core gate-pass counts don't bleed into each other, and each
   core's PMU counts exactly its own retired instructions. *)

let test_table5_two_cores () =
  let dataA = 0x600000 and dataB = 0x601000 in
  let stack0 = 0x7F0000000000 and stack1 = 0x7F0000020000 in
  Api.next_vmid := 0x2600;
  let machine = Machine.create () in
  let kernel = Kernel.create machine Kernel.Host_vhe in
  let proc = Kernel.create_process kernel in
  ignore
    (Kernel.map_anon kernel proc ~at:(stack0 - 0x10000) ~len:0x10000 Vma.rw);
  ignore
    (Kernel.map_anon kernel proc ~at:(stack1 - 0x10000) ~len:0x10000 Vma.rw);
  ignore (Kernel.map_anon kernel proc ~at:dataA ~len:0x2000 Vma.rw);
  let t0 =
    Api.lz_enter ~allow_scalable:true ~insn_san:1 ~entry:code_va ~sp:stack0
      kernel proc
  in
  let p1 = Api.lz_alloc t0 and p2 = Api.lz_alloc t0 in
  (* A gate holds a single legal return entry, so each thread gets its
     own gate pair onto the same two domains: thread 0 uses gates 0/1,
     thread 1 uses gates 2/3. *)
  Api.lz_map_gate_pgt t0 ~pgt:p1 ~gate:0;
  Api.lz_map_gate_pgt t0 ~pgt:p2 ~gate:1;
  Api.lz_map_gate_pgt t0 ~pgt:p1 ~gate:2;
  Api.lz_map_gate_pgt t0 ~pgt:p2 ~gate:3;
  Api.lz_prot t0 ~addr:dataA ~len:4096 ~pgt:p1
    ~perm:(Perm.read lor Perm.write);
  Api.lz_prot t0 ~addr:dataB ~len:4096 ~pgt:p2
    ~perm:(Perm.read lor Perm.write);
  let tr0 = Trace.create ~capacity:16384 () in
  Api.set_tracer t0 (Some tr0);
  (* Two routines in one code region: [iters] switch-store passes
     through gate 0 then gate 1 per iteration, distinct counts per
     thread so attribution mistakes are visible as count bleed. *)
  let sites = ref [] in
  let b = Builder.create ~base:code_va in
  let routine ~gates:(ga, gb) ~iters ~mark =
    let entry = Builder.here b in
    Builder.emit b [ Insn.Movz (20, iters, 0) ];
    let loop = Builder.here b in
    Builder.switch_gate b ~gate:ga;
    sites := (ga, Builder.here b) :: !sites;
    Builder.mov_imm64 b 0 dataA;
    Builder.emit b [ Insn.Movz (1, mark, 0); Insn.Str (1, 0, 0) ];
    Builder.switch_gate b ~gate:gb;
    sites := (gb, Builder.here b) :: !sites;
    Builder.mov_imm64 b 0 dataB;
    Builder.emit b [ Insn.Str (1, 0, 0) ];
    Builder.emit b [ Insn.Subs (20, 20, Insn.Imm 1) ];
    Builder.emit b [ Insn.Bcond (Insn.NE, loop - Builder.here b) ];
    Builder.emit b [ Insn.Brk 0 ];
    entry
  in
  let iters0 = 40 and iters1 = 60 in
  let entry0 = routine ~gates:(0, 1) ~iters:iters0 ~mark:1 in
  let entry1 = routine ~gates:(2, 3) ~iters:iters1 ~mark:2 in
  Api.load_and_register t0 b ~va:code_va;
  check_int "thread 0 entry" code_va entry0;
  let t1 = Kmod.new_thread t0 ~entry:entry1 ~sp:stack1 in
  let tr1 = Trace.create ~capacity:16384 () in
  Kmod.set_tracer t1 (Some tr1);
  (* Gate_exit markers land in whichever tracer is attached at
     registration; re-register thread 1's return sites (same legal
     entries, so the gate table is unchanged) to add them to tr1. *)
  List.iter
    (fun (gate, entry) ->
      if gate >= 2 then Kmod.register_gate_entry t1 ~gate ~entry)
    (List.rev !sites);
  let pmu0 = Core.attach_pmu t0.Kmod.core
  and pmu1 = Core.attach_pmu t1.Kmod.core in
  List.iter
    (fun p ->
      Pmu.write_evtyper p ~cycles:0 ~insns:0 0 Pmu.Event.inst_retired;
      Pmu.write_cntenset p ~cycles:0 ~insns:0 1;
      Pmu.write_pmcr p ~cycles:0 ~insns:0 1)
    [ pmu0; pmu1 ];
  (* Interleave: alternate short slices; rebinding the tracer before
     each slice points the (thread-shared) TLB at the running core's
     tracer, so flush attribution follows execution. *)
  let handles = [| t0; t1 |] and trs = [| tr0; tr1 |] in
  let outs = [| None; None |] in
  let steps = ref 0 in
  while Array.exists (( = ) None) outs && !steps < 4_000 do
    incr steps;
    for i = 0 to 1 do
      if outs.(i) = None then begin
        Core.set_tracer handles.(i).Kmod.core (Some trs.(i));
        match Kmod.run ~max_insns:600 handles.(i) with
        | Kmod.Limit_reached -> ()
        | o -> outs.(i) <- Some o
      end
    done
  done;
  Array.iteri
    (fun i o ->
      match o with
      | Some (Kmod.Exited 0) -> ()
      | Some o -> Alcotest.failf "thread %d: %a" i Kmod.pp_outcome o
      | None -> Alcotest.failf "thread %d never finished" i)
    outs;
  let report i tr =
    let core = handles.(i).Kmod.core in
    Span.of_trace ~total_cycles:core.Core.cycles tr
  in
  let r0 = report 0 tr0 and r1 = report 1 tr1 in
  check_int "thread 0: no dropped events" 0 r0.Span.dropped;
  check_int "thread 1: no dropped events" 0 r1.Span.dropped;
  check_bool "thread 0: full span coverage" true (r0.Span.coverage >= 0.999);
  check_bool "thread 1: full span coverage" true (r1.Span.coverage >= 0.999);
  let count (r : Span.report) name =
    try (List.find (fun (x : Span.row) -> x.Span.name = name) r.Span.rows)
          .Span.count
    with Not_found -> 0
  in
  (* No cross-core bleed: each tracer counts exactly its own thread's
     gate passes (2 per iteration), not the union. *)
  check_int "thread 0 gate.switch count" (2 * iters0)
    (count r0 "gate.switch");
  check_int "thread 1 gate.switch count" (2 * iters1)
    (count r1 "gate.switch");
  check_int "thread 0 gate.check count" (2 * iters0) (count r0 "gate.check");
  check_int "thread 1 gate.check count" (2 * iters1) (count r1 "gate.check");
  (* Per-core PMU: counter 0 (INST_RETIRED, enabled from 0) equals the
     core's own retired count — not the sum across cores. *)
  let retired i p =
    let core = handles.(i).Kmod.core in
    Pmu.read_evcntr p ~cycles:core.Core.cycles ~insns:core.Core.insns 0
  in
  check_int "thread 0 PMU counts own instructions"
    (t0.Kmod.core.Core.insns land 0xFFFFFFFF)
    (retired 0 pmu0);
  check_int "thread 1 PMU counts own instructions"
    (t1.Kmod.core.Core.insns land 0xFFFFFFFF)
    (retired 1 pmu1);
  check_bool "the two cores did different amounts of work" true
    (t0.Kmod.core.Core.insns <> t1.Kmod.core.Core.insns)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lz_smp"
    [ ( "determinism",
        [ q prop_seq_par_identical; q prop_engine_differential ] );
      ( "shootdown",
        [ Alcotest.test_case "stale TLB until DVM completion" `Quick
            test_shootdown_stale_tlb;
          Alcotest.test_case "control: no munmap, no fault" `Quick
            test_shootdown_control;
          Alcotest.test_case "storm deterministic seq vs par" `Quick
            test_shootdown_seq_par_identical ] );
      ( "gic",
        [ Alcotest.test_case "irm broadcast vs targeted" `Quick
            test_sgi_irm_broadcast ] );
      ( "snapshot",
        [ Alcotest.test_case "capture/restore/run" `Quick
            test_snapshot_restore_run ] );
      ( "table5",
        [ Alcotest.test_case "two cores, per-core attribution" `Quick
            test_table5_two_cores ] ) ]
