(* Tests for lz_snap: CoW physical memory (fork isolation, dirty
   counts, shared/private accounting), whole-machine snapshot/restore
   exactness — the property that [snapshot → restore → run] is
   indistinguishable from an uninterrupted run in registers, memory,
   cycles, instructions and TLB statistics, with the superblock engine
   on and off and with the snapshot taken mid-preemption-slice — and
   the replay regression: [Replay.replay_to] re-executes from periodic
   snapshots and reproduces the reference event ring byte-identically. *)

open Lz_mem
open Lz_cpu
open Lightzone
module Snapshot = Lz_snap.Snapshot
module Trace = Lz_trace.Trace
module Sb = Lz_eval.Switch_bench

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let q = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Phys CoW unit tests *)

let test_phys_snapshot_restore () =
  let p = Phys.create () in
  let f1 = Phys.alloc_frame p and f2 = Phys.alloc_frame p in
  Phys.write64 p f1 0xAAAA;
  Phys.write64 p f2 0xBBBB;
  let s = Phys.snapshot p in
  check_int "clean after capture" 0 (Phys.dirty_pages p s);
  Phys.write64 p f1 0xCCCC;
  Phys.write64 p (f1 + 8) 0xDDDD;
  let f3 = Phys.alloc_frame p in
  Phys.write64 p f3 0xEEEE;
  check_int "two dirty frames" 2 (Phys.dirty_pages p s);
  let dirty = Phys.restore p s in
  check_int "restore reports dirty count" 2 dirty;
  check_int "f1 rewound" 0xAAAA (Phys.read64 p f1);
  check_int "f1+8 rewound" 0 (Phys.read64 p (f1 + 8));
  check_int "f2 untouched" 0xBBBB (Phys.read64 p f2);
  check_int "f3 back to hole" 0 (Phys.read64 p f3);
  (* Allocator state rewound too: the next frame is f3 again. *)
  check_int "allocator rewound" f3 (Phys.alloc_frame p);
  Phys.release p s

let test_phys_cow_fork_isolation () =
  let p = Phys.create () in
  let f = Phys.alloc_frame p in
  Phys.write64 p f 0x1111;
  let c = Phys.cow_clone p in
  check_int "clone reads shared frame" 0x1111 (Phys.read64 c f);
  Phys.write64 c f 0x2222;
  check_int "clone sees its write" 0x2222 (Phys.read64 c f);
  check_int "source unaffected" 0x1111 (Phys.read64 p f);
  Phys.write64 p f 0x3333;
  check_int "source write invisible to clone" 0x2222 (Phys.read64 c f);
  let st = Phys.stats p in
  check_bool "unshares happened" true (st.Phys.unshares >= 1)

let test_phys_stats_shared_private () =
  let p = Phys.create () in
  let f1 = Phys.alloc_frame p and f2 = Phys.alloc_frame p in
  Phys.write64 p f1 1;
  Phys.write64 p f2 2;
  let st = Phys.stats p in
  check_int "all private before clone" 0 st.Phys.shared;
  check_int "two resident" 2 st.Phys.resident;
  let c = Phys.cow_clone p in
  let st = Phys.stats p in
  check_int "all shared after clone" 2 st.Phys.shared;
  check_int "none private" 0 st.Phys.private_;
  Phys.write64 c f1 3;
  let st = Phys.stats p in
  check_int "one unshared" 1 st.Phys.shared;
  check_int "one private again" 1 st.Phys.private_

(* Satellite 1 regression: the 1-entry last-frame memo must not
   survive free_frame or a CoW unshare on the other side. *)
let test_phys_memo_invalidation () =
  let p = Phys.create () in
  let f = Phys.alloc_frame p in
  Phys.write64 p f 0x42;
  (* warm the memo on f *)
  check_int "warm" 0x42 (Phys.read64 p f);
  Phys.free_frame p f;
  check_int "freed frame reads zero" 0 (Phys.read64 p f);
  let f' = Phys.alloc_frame p in
  check_int "frame reused" f f';
  Phys.write64 p f' 0x43;
  (* Memo must not let a clone's writable base leak through a share. *)
  let c = Phys.cow_clone p in
  check_int "clone warm" 0x43 (Phys.read64 c f');
  Phys.write64 p f' 0x44;
  check_int "clone still sees old value" 0x43 (Phys.read64 c f');
  check_int "source sees new value" 0x44 (Phys.read64 p f')

(* ------------------------------------------------------------------ *)
(* Whole-machine snapshot/restore exactness *)

let cm = Cost_model.cortex_a55

type endstate = {
  digest : string;
  cycles : int;
  insns : int;
  tlb_hits : int;
  tlb_misses : int;
  output : string;
}

let endstate (z : Kmod.t) =
  {
    digest = Sb.zone_digest z;
    cycles = z.Kmod.core.Core.cycles;
    insns = z.Kmod.core.Core.insns;
    tlb_hits = Tlb.hits z.Kmod.machine.Lz_kernel.Machine.tlb;
    tlb_misses = Tlb.misses z.Kmod.machine.Lz_kernel.Machine.tlb;
    output = Buffer.contents z.Kmod.proc.Lz_kernel.Proc.output;
  }

(* Run a warm slice to completion, snapshotting at the [k]-th
   quiescent point along the way; then restore and re-run. Both
   completions must agree on every observable. *)
let snapshot_transparency ~blocks ~preempt ~domains ~n ~k () =
  let r = Sb.prepare ?preempt cm ~env:Sb.Host ~domains ~n in
  let z = r.Sb.t in
  Core.set_blocks z.Kmod.core blocks;
  let snap = ref None in
  let seen = ref 0 in
  z.Kmod.on_quiescent <-
    Some
      (fun () ->
        incr seen;
        if !seen = k && !snap = None then snap := Some (Snapshot.capture z));
  Sb.run_slice z;
  z.Kmod.on_quiescent <- None;
  let reference = endstate z in
  match !snap with
  | None ->
      (* Not enough quiescent points (cooperative short run): snapshot
         the rewound end state instead and check restore is exact. *)
      let s = Snapshot.capture z in
      ignore (Snapshot.restore z s);
      Snapshot.release z s;
      let got = endstate z in
      (reference, got)
  | Some s ->
      ignore (Snapshot.restore z s);
      Snapshot.release z s;
      Sb.run_slice z;
      let got = endstate z in
      (reference, got)

let check_endstates (a, b) =
  check_string "digest" a.digest b.digest;
  check_int "cycles" a.cycles b.cycles;
  check_int "insns" a.insns b.insns;
  check_int "tlb hits" a.tlb_hits b.tlb_hits;
  check_int "tlb misses" a.tlb_misses b.tlb_misses;
  check_string "output" a.output b.output

let test_snapshot_transparency_preempted () =
  check_endstates
    (snapshot_transparency ~blocks:true ~preempt:(Some 3000) ~domains:8
       ~n:400 ~k:3 ())

let test_snapshot_transparency_no_blocks () =
  check_endstates
    (snapshot_transparency ~blocks:false ~preempt:(Some 3000) ~domains:8
       ~n:400 ~k:3 ())

let test_snapshot_transparency_cooperative () =
  check_endstates
    (snapshot_transparency ~blocks:true ~preempt:None ~domains:4 ~n:100 ~k:1
       ())

let prop_snapshot_transparency =
  QCheck.Test.make ~count:12 ~name:"snapshot/restore/run == uninterrupted run"
    QCheck.(
      quad (int_range 1 8) (int_range 50 400) bool (int_range 1 6))
    (fun (domains, n, blocks, k) ->
      let slice = 1000 + (397 * k) in
      let a, b =
        snapshot_transparency ~blocks ~preempt:(Some slice) ~domains ~n ~k ()
      in
      a = b)

(* ------------------------------------------------------------------ *)
(* Forking *)

let test_fork_digest_identity () =
  let r = Sb.prepare cm ~env:Sb.Host ~domains:8 ~n:200 in
  let z = r.Sb.t in
  let image = Snapshot.capture z in
  let forks = List.init 4 (fun _ -> Snapshot.fork z image) in
  (* Forks must start from the image's architectural state... *)
  List.iter
    (fun f -> check_string "fork digest" (Sb.zone_digest z) (Sb.zone_digest f))
    forks;
  (* ...and running a slice on each must land where the source lands. *)
  Sb.run_slice z;
  let want = Sb.zone_digest z in
  List.iter
    (fun f ->
      Sb.run_slice f;
      check_string "fork slice digest" want (Sb.zone_digest f))
    forks;
  (* Forks are isolated: their writes never leak into the source. *)
  ignore (Snapshot.restore z image);
  check_int "source rewinds clean" 0 (Snapshot.dirty_pages z image);
  Snapshot.release z image

let test_fork_isolated_memory () =
  let r = Sb.prepare cm ~env:Sb.Host ~domains:2 ~n:50 in
  let z = r.Sb.t in
  let image = Snapshot.capture z in
  let f = Snapshot.fork z image in
  (* Write into the source's domain pages; the fork must not see it. *)
  let before = Sb.zone_digest f in
  Sb.run_slice z;
  check_string "fork unaffected by source run" before (Sb.zone_digest f);
  Snapshot.release z image

(* ------------------------------------------------------------------ *)
(* Replay *)

let test_replay_byte_identical () =
  let tr = Trace.create () in
  let r = Sb.prepare ~preempt:3000 cm ~env:Sb.Host ~domains:8 ~n:400 in
  let z = r.Sb.t in
  (* The tracer was not attached during prepare; attach now so the
     reference slice is fully traced. *)
  Api.set_tracer z (Some tr);
  let rec_ = Snapshot.Replay.record ~every:2 z in
  Sb.run_slice z;
  Snapshot.Replay.detach rec_;
  let reference = Trace.events tr in
  let by_seq = Hashtbl.create 1024 in
  List.iter
    (fun e -> Hashtbl.replace by_seq e.Trace.seq (Trace.event_to_json e))
    reference;
  let snaps = Snapshot.Replay.snapshots rec_ in
  check_bool "periodic snapshots were taken" true (List.length snaps >= 2);
  List.iter
    (fun (at, _) ->
      let index = min (Trace.total tr - 1) (at + 40) in
      if index >= at then begin
        let replayed = Snapshot.Replay.replay_to rec_ ~index in
        check_bool "replay produced events" true (replayed <> []);
        List.iter
          (fun e ->
            match Hashtbl.find_opt by_seq e.Trace.seq with
            | Some json ->
                check_string
                  (Printf.sprintf "replayed event #%d" e.Trace.seq)
                  json (Trace.event_to_json e)
            | None -> ())
          replayed
      end)
    snaps;
  (* Replay must be side-effect-free on the reference timeline. *)
  let after = Trace.events tr in
  check_int "reference ring untouched" (List.length reference)
    (List.length after);
  Snapshot.Replay.release_all rec_

let suite =
  [
    ( "phys-cow",
      [
        Alcotest.test_case "snapshot/restore" `Quick
          test_phys_snapshot_restore;
        Alcotest.test_case "fork isolation" `Quick
          test_phys_cow_fork_isolation;
        Alcotest.test_case "shared/private stats" `Quick
          test_phys_stats_shared_private;
        Alcotest.test_case "memo invalidation" `Quick
          test_phys_memo_invalidation;
      ] );
    ( "machine-snapshot",
      [
        Alcotest.test_case "transparency (preempted, blocks)" `Quick
          test_snapshot_transparency_preempted;
        Alcotest.test_case "transparency (preempted, no blocks)" `Quick
          test_snapshot_transparency_no_blocks;
        Alcotest.test_case "transparency (cooperative)" `Quick
          test_snapshot_transparency_cooperative;
        q prop_snapshot_transparency;
      ] );
    ( "fork",
      [
        Alcotest.test_case "digest identity" `Quick test_fork_digest_identity;
        Alcotest.test_case "memory isolation" `Quick
          test_fork_isolated_memory;
      ] );
    ("replay", [ Alcotest.test_case "byte-identical" `Quick
                   test_replay_byte_identical ]);
  ]

let () = Alcotest.run "lz_snap" suite
