(* Tests for the observability subsystem: the PMUv3 model (exactness
   against the core's own totals, enable/freeze semantics, guest
   MSR/MRS access), the bounded trace ring, flush/refill event wiring,
   span attribution over a real gate run, and the qcheck property that
   attaching a tracer leaves architectural state bit-identical. *)

open Lz_arm
open Lz_mem
open Lz_cpu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let q = QCheck_alcotest.to_alcotest

module Trace = Lz_trace.Trace
module Span = Lz_trace.Span

(* ------------------------------------------------------------------ *)
(* PMU counter semantics (pure model) *)

let ccntr_bit = 1 lsl Pmu.cycle_counter_bit

let test_pmu_freeze () =
  let p = Pmu.create () in
  Pmu.write_pmcr p ~cycles:0 ~insns:0 0b1;
  check_int "disabled counter stays 0" 0 (Pmu.read_ccntr p ~cycles:90);
  Pmu.write_cntenset p ~cycles:100 ~insns:0 ccntr_bit;
  check_int "counts from enable" 50 (Pmu.read_ccntr p ~cycles:150);
  Pmu.write_cntenclr p ~cycles:150 ~insns:0 ccntr_bit;
  check_int "frozen while disabled" 50 (Pmu.read_ccntr p ~cycles:400);
  Pmu.write_cntenset p ~cycles:400 ~insns:0 ccntr_bit;
  check_int "resumes without gap" 70 (Pmu.read_ccntr p ~cycles:420);
  (* PMCR.C resets the cycle counter; PMCR.E=0 freezes everything. *)
  Pmu.write_pmcr p ~cycles:420 ~insns:0 0b101;
  check_int "PMCR.C resets" 0 (Pmu.read_ccntr p ~cycles:420);
  Pmu.write_pmcr p ~cycles:430 ~insns:0 0b0;
  check_int "PMCR.E=0 freezes" 10 (Pmu.read_ccntr p ~cycles:500)

let test_pmu_discrete_events () =
  let p = Pmu.create () in
  Pmu.write_evtyper p ~cycles:0 ~insns:0 0 Pmu.Event.tlb_flush;
  Pmu.write_cntenset p ~cycles:0 ~insns:0 0b1;
  Pmu.write_pmcr p ~cycles:0 ~insns:0 0b1;
  Pmu.record p Pmu.Event.tlb_flush;
  Pmu.record p Pmu.Event.tlb_flush;
  Pmu.record p Pmu.Event.exc_taken;
  check_int "counter sees its event only" 2
    (Pmu.read_evcntr p ~cycles:10 ~insns:5 0);
  check_int "totals independent of programming" 1
    (Pmu.event_total p Pmu.Event.exc_taken);
  (* Retargeting freezes the old count and follows the new source. *)
  Pmu.write_evtyper p ~cycles:10 ~insns:5 0 Pmu.Event.exc_taken;
  Pmu.record p Pmu.Event.exc_taken;
  check_int "retarget restarts from current total" 3
    (Pmu.read_evcntr p ~cycles:20 ~insns:9 0)

let test_pmu_overflow_wrap () =
  let p = Pmu.create () in
  Pmu.write_evtyper p ~cycles:0 ~insns:0 0 Pmu.Event.tlb_flush;
  Pmu.write_cntenset p ~cycles:0 ~insns:0 0b1;
  Pmu.write_pmcr p ~cycles:0 ~insns:0 0b1;
  (* Park the 32-bit counter just below the top and push it over. *)
  Pmu.write_evcntr p ~cycles:0 ~insns:0 0 0xFFFF_FFFE;
  Pmu.record p Pmu.Event.tlb_flush;
  Pmu.record p Pmu.Event.tlb_flush;
  Pmu.record p Pmu.Event.tlb_flush;
  check_int "counter wraps modulo 2^32, no pinning" 1
    (Pmu.read_evcntr p ~cycles:10 ~insns:0 0);
  check_int "wrap latches the overflow bit" 0b1
    (Pmu.read_ovs p ~cycles:10 ~insns:0);
  Pmu.write_ovsclr p ~cycles:10 ~insns:0 0b1;
  check_int "PMOVSCLR clears the bit" 0 (Pmu.read_ovs p ~cycles:10 ~insns:0);
  Pmu.write_ovsset p ~cycles:10 ~insns:0 0b10;
  check_int "PMOVSSET sets bits directly" 0b10
    (Pmu.read_ovs p ~cycles:10 ~insns:0)

let test_pmu_cycle_overflow () =
  let p = Pmu.create () in
  Pmu.write_cntenset p ~cycles:0 ~insns:0 ccntr_bit;
  Pmu.write_pmcr p ~cycles:0 ~insns:0 0b1;
  Pmu.write_ccntr p ~cycles:0x100 0xFFFF_FF00;
  (* 0x200 more cycles carry out of bit 31: with PMCR.LC clear the
     cycle counter's overflow bit fires; the 64-bit value keeps
     counting (no 32-bit truncation of PMCCNTR). *)
  check_int "cycle counter keeps its 64-bit value" 0x1_0000_0100
    (Pmu.read_ccntr p ~cycles:0x300);
  check_int "bit-31 carry sets OVS bit 31" ccntr_bit
    (Pmu.read_ovs p ~cycles:0x300 ~insns:0);
  (* With LC set, 32-bit carries no longer latch the flag. *)
  Pmu.write_ovsclr p ~cycles:0x300 ~insns:0 ccntr_bit;
  Pmu.write_pmcr p ~cycles:0x300 ~insns:0 0b100_0001;
  Pmu.write_ccntr p ~cycles:0x300 0xFFFF_FF00;
  check_int "LC=1 suppresses the 32-bit overflow flag" 0
    (Pmu.read_ovs p ~cycles:0x600 ~insns:0)

(* ------------------------------------------------------------------ *)
(* PMU exactness over the microbench programs (host API) *)

let test_pmu_exact name () =
  let open Lz_workloads.Microbench in
  let env = build ~iters:500 name in
  let core = env.core in
  let p = Core.attach_pmu core in
  let cycles = core.Core.cycles and insns = core.Core.insns in
  Pmu.write_evtyper p ~cycles ~insns 0 Pmu.Event.cpu_cycles;
  Pmu.write_evtyper p ~cycles ~insns 1 Pmu.Event.inst_retired;
  Pmu.write_evtyper p ~cycles ~insns 2 Pmu.Event.l1d_tlb_refill;
  Pmu.write_evtyper p ~cycles ~insns 3 Pmu.Event.l1i_tlb_refill;
  Pmu.write_cntenset p ~cycles ~insns (ccntr_bit lor 0b1111);
  Pmu.write_pmcr p ~cycles ~insns 0b1;
  let c0 = core.Core.cycles and i0 = core.Core.insns in
  run_to_brk env;
  let cycles = core.Core.cycles and insns = core.Core.insns in
  check_int "PMCCNTR == elapsed core cycles" (cycles - c0)
    (Pmu.read_ccntr p ~cycles);
  check_int "PMEVCNTR0 (CPU_CYCLES) == elapsed core cycles" (cycles - c0)
    (Pmu.read_evcntr p ~cycles ~insns 0);
  check_int "PMEVCNTR1 (INST_RETIRED) == retired instructions" (insns - i0)
    (Pmu.read_evcntr p ~cycles ~insns 1);
  (* Every miss in these programs translates successfully, so D+I
     refills must equal the TLB's own miss count exactly. *)
  check_int "TLB refill counters == TLB misses"
    (Tlb.misses core.Core.tlb)
    (Pmu.read_evcntr p ~cycles ~insns 2
    + Pmu.read_evcntr p ~cycles ~insns 3)

(* ------------------------------------------------------------------ *)
(* Guest-visible PMU access via MSR/MRS *)

let code_va = 0x10000

let build_bare program =
  let phys = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root phys in
  let code_pa = Phys.alloc_frame phys in
  Stage1.map_page phys ~root ~va:code_va ~pa:code_pa
    { Pte.user = false; read_only = true; uxn = true; pxn = false; ng = true };
  List.iteri
    (fun i insn -> Phys.write32 phys (code_pa + (4 * i)) (Encoding.encode insn))
    program;
  let core = Core.create phys tlb Cost_model.cortex_a55 Pstate.EL1 in
  Sysreg.write core.Core.sys Sysreg.TTBR0_EL1 (Mmu.ttbr_value ~root ~asid:1);
  core.Core.pc <- code_va;
  core

let test_pmu_guest_msr_mrs () =
  let open Insn in
  let core =
    build_bare
      [ Movz (0, 1, 0);
        Msr (Sysreg.PMCR_EL0, 0);            (* PMCR.E *)
        Movz (1, 0, 0);
        Movk (1, 0x8000, 16);                (* bit 31: cycle counter *)
        Msr (Sysreg.PMCNTENSET_EL0, 1);
        Mrs (2, Sysreg.PMCR_EL0);
        Mrs (3, Sysreg.PMCCNTR_EL0);
        Mrs (4, Sysreg.PMCCNTR_EL0);
        Brk 0 ]
  in
  (match Core.run core with
  | Core.Trap_el1 (Core.Ec_brk _) | Core.Trap_el2 (Core.Ec_brk _) -> ()
  | s -> Alcotest.failf "expected brk, got %a" Core.pp_stop s);
  let x n = Core.reg core n in
  check_int "MRS PMCR reads E back" 1 (x 2 land 1);
  check_int "PMCR.N advertises 6 counters" Pmu.n_counters
    ((x 2 lsr 11) land 0x1F);
  check_bool "PMCCNTR live after MSR enable" true (x 3 > 0);
  check_bool "PMCCNTR monotone between reads" true (x 4 > x 3);
  (* The MSR lazily attached a PMU that the host API can also read. *)
  (match Core.pmu core with
  | Some p ->
      let host = Pmu.read_ccntr p ~cycles:core.Core.cycles in
      check_bool "host read continues the guest's counter" true
        (host >= x 4 && host <= core.Core.cycles)
  | None -> Alcotest.fail "guest MSR did not attach a PMU")

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_ring_overflow () =
  let tr = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit tr ~cycles:(i * 10) (Trace.Syscall { nr = i })
  done;
  check_int "len capped at capacity" 4 (Trace.len tr);
  check_int "total counts every emission" 10 (Trace.total tr);
  check_int "dropped counts the overflow" 6 (Trace.dropped tr);
  List.iteri
    (fun i ev ->
      check_int "seq preserved" i ev.Trace.seq;
      check_int "cycles preserved" (i * 10) ev.Trace.cycles;
      match ev.Trace.payload with
      | Trace.Syscall { nr } -> check_int "payload preserved" i nr
      | p -> Alcotest.failf "unexpected payload %s" (Trace.payload_name p))
    (Trace.events tr);
  Trace.clear tr;
  check_int "clear empties the ring" 0 (Trace.len tr);
  check_int "clear resets drops" 0 (Trace.dropped tr)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_event_json () =
  let ev =
    { Trace.seq = 3; cycles = 41;
      payload = Trace.Tlb_flush { scope = Trace.Flush_asid; vmid = 2 } }
  in
  let s = Trace.event_to_json ev in
  check_bool "json names the event" true (contains s "tlb_flush");
  check_bool "json carries the timestamp" true (contains s "41")

(* ------------------------------------------------------------------ *)
(* TLB flush wiring *)

let test_tlb_flush_events () =
  let tlb = Tlb.create () in
  let tr = Trace.create () in
  let p = Pmu.create () in
  Tlb.set_tracer tlb (Some tr);
  Tlb.set_pmu tlb (Some p);
  Tlb.flush_all tlb;
  Tlb.flush_vmid tlb 3;
  Tlb.flush_asid tlb ~vmid:1 ~asid:7;
  Tlb.flush_va tlb ~vmid:1 ~va:0x4000;
  check_int "PMU saw every flush" 4 (Pmu.event_total p Pmu.Event.tlb_flush);
  let scopes =
    List.map
      (fun ev ->
        match ev.Trace.payload with
        | Trace.Tlb_flush { scope; _ } -> scope
        | p -> Alcotest.failf "unexpected payload %s" (Trace.payload_name p))
      (Trace.events tr)
  in
  check_bool "one event per flush kind" true
    (scopes
     = [ Trace.Flush_all; Trace.Flush_vmid; Trace.Flush_asid;
         Trace.Flush_va ])

(* ------------------------------------------------------------------ *)
(* Span attribution over a real 16-domain gate run *)

let test_traced_run_coverage () =
  let r =
    Lz_eval.Switch_bench.traced_run Cost_model.cortex_a55
      ~env:Lz_eval.Switch_bench.Host ~domains:16 ~n:300
  in
  let rep = r.Lz_eval.Switch_bench.report in
  check_int "no drops" 0 rep.Span.dropped;
  check_bool "coverage >= 0.95" true (rep.Span.coverage >= 0.95);
  let row name =
    try (List.find (fun (r : Span.row) -> r.name = name) rep.Span.rows).count
    with Not_found -> 0
  in
  check_int "every switch passed phase 1" 300 (row "gate.switch");
  check_int "every switch passed phase 2" 300 (row "gate.check");
  check_bool "gate phases carry cycles" true
    (List.for_all
       (fun (r : Span.row) -> r.cycles > 0)
       (List.filter
          (fun (r : Span.row) ->
            r.name = "gate.switch" || r.name = "gate.check")
          rep.Span.rows));
  check_int "one domain switch per gate pass" 300
    (try List.assoc "domain_switch" rep.Span.points with Not_found -> 0)

(* ------------------------------------------------------------------ *)
(* Superblock engine under trace: traced runs fall back to the
   per-instruction loop, so toggling the block layer must leave a
   traced 128-domain Table 5 run completely untouched — byte-identical
   event stream, identical architectural digest, full span coverage. *)

let test_blocks_invisible_under_trace () =
  let run () =
    (* Pin the global VMID allocator so the flush events of two
       complete runs can be compared byte-for-byte. *)
    Lightzone.Api.next_vmid := 0x100;
    Lz_eval.Switch_bench.traced_run ~fast_paths:true Cost_model.cortex_a55
      ~env:Lz_eval.Switch_bench.Host ~domains:128 ~n:300
  in
  let saved = !Fastpath.default_blocks in
  Fastpath.default_blocks := true;
  let on = run () in
  Fastpath.default_blocks := false;
  let off = run () in
  Fastpath.default_blocks := saved;
  let bytes (r : Lz_eval.Switch_bench.traced) =
    String.concat "\n" (List.map Trace.event_to_json (Trace.events r.trace))
  in
  check_bool "event stream byte-identical" true (bytes on = bytes off);
  check_bool "architectural digest identical" true
    (on.Lz_eval.Switch_bench.digest = off.Lz_eval.Switch_bench.digest);
  check_int "no drops" 0 on.Lz_eval.Switch_bench.report.Span.dropped;
  check_bool "span coverage stays 100%" true
    (on.Lz_eval.Switch_bench.report.Span.coverage >= 0.999
    && off.Lz_eval.Switch_bench.report.Span.coverage >= 0.999)

(* ------------------------------------------------------------------ *)
(* Exclusive vs inclusive accounting on a synthetic nested stream *)

let test_exclusive_inclusive () =
  let ev cycles payload = { Trace.seq = 0; cycles; payload } in
  (* A gate pass, then a forwarded fault: dabort into the EL1 stub,
     HVC into EL2, EL2 ERET plus the stub-retiring balancing exit. *)
  let events =
    [ ev 100 (Trace.Gate_entry { gate = 0 });
      ev 150 (Trace.Gate_check { gate = 0 });
      ev 200 (Trace.Gate_exit { gate = 0 });
      ev 300 (Trace.Trap_enter { ec = 0x24; from_el = 1; to_el = 1 });
      ev 340 (Trace.Trap_enter { ec = 0x16; from_el = 1; to_el = 2 });
      ev 700 (Trace.Trap_exit { from_el = 2; to_el = 1 });
      ev 700 (Trace.Trap_exit { from_el = 1; to_el = 1 }) ]
  in
  let rep = Span.analyze ~total_cycles:1000 ~dropped:0 events in
  let row name =
    List.find (fun (x : Span.row) -> x.Span.name = name) rep.Span.rows
  in
  check_int "mainline exclusive" 500 (row "mainline").Span.cycles;
  check_int "gate.switch exclusive" 50 (row "gate.switch").Span.cycles;
  check_int "gate.check exclusive" 50 (row "gate.check").Span.cycles;
  check_int "dabort exclusive is the stub only" 40
    (row "trap.dabort").Span.cycles;
  check_int "dabort inclusive spans the forward" 400
    (row "trap.dabort").Span.inclusive_cycles;
  check_int "hvc exclusive" 360 (row "trap.hvc").Span.cycles;
  check_int "hvc inclusive" 360 (row "trap.hvc").Span.inclusive_cycles;
  check_int "no dangling frames" 0 rep.Span.unbalanced;
  check_bool "full coverage" true (rep.Span.coverage >= 0.999)

(* ------------------------------------------------------------------ *)
(* Decimation keeps boundaries, samples points, and scales counts *)

let test_decimation () =
  let tr = Trace.create ~decimate:4 () in
  Trace.emit tr ~cycles:10 (Trace.Gate_entry { gate = 0 });
  for i = 0 to 99 do
    Trace.emit tr ~cycles:(20 + i) (Trace.Syscall { nr = i })
  done;
  Trace.emit tr ~cycles:200 (Trace.Gate_exit { gate = 0 });
  check_int "boundaries kept, 1-in-4 points kept" 27 (Trace.len tr);
  check_int "nothing counted as dropped" 0 (Trace.dropped tr);
  check_int "total still counts every emission" 102 (Trace.total tr);
  let rep = Span.of_trace ~total_cycles:300 tr in
  check_int "point counts scaled back up" 100
    (try List.assoc "syscall" rep.Span.points with Not_found -> 0);
  check_bool "span coverage unaffected by decimation" true
    (rep.Span.coverage >= 0.999)

(* ------------------------------------------------------------------ *)
(* Span attribution of forwarded traps (regression).

   A stage-1 fault in a LightZone process takes two Trap_enters — the
   EL1 vector stub, then the stub's HVC into EL2 — but the EL2 ERET
   returns straight to the interrupted context, so only one Trap_exit
   was emitted.  The analyzer's frame stack grew a dangling frame per
   forwarded exception and attributed inter-fault mainline cycles to
   the innermost trap class. *)

let test_forwarded_trap_attribution () =
  let r =
    Lz_eval.Switch_bench.traced_run Cost_model.cortex_a55
      ~env:Lz_eval.Switch_bench.Host ~domains:16 ~n:300
  in
  let rep = r.Lz_eval.Switch_bench.report in
  let enters, exits, dabort_enters =
    List.fold_left
      (fun (en, ex, da) (e : Trace.event) ->
        match e.Trace.payload with
        | Trace.Trap_enter { ec; _ } ->
            (en + 1, ex, if Span.ec_name ec = "dabort" then da + 1 else da)
        | Trace.Trap_exit _ -> (en, ex + 1, da)
        | _ -> (en, ex, da))
      (0, 0, 0)
      (Trace.events r.Lz_eval.Switch_bench.trace)
  in
  (* The final BRK never returns (the process exits inside the
     handler), so its stub + HVC enters legitimately lack exits. *)
  check_bool
    (Printf.sprintf "trap enters balanced by exits (%d vs %d)" enters exits)
    true
    (enters - exits <= 2);
  let row name =
    List.find_opt (fun (x : Span.row) -> x.Span.name = name) rep.Span.rows
  in
  match row "trap.dabort" with
  | None -> Alcotest.fail "no trap.dabort row in a demand-faulting run"
  | Some d ->
      check_int "one exclusive trap.dabort span per dabort" dabort_enters
        d.Span.count

(* ------------------------------------------------------------------ *)
(* Tracing is architecturally invisible *)

type summary = {
  regs : int array;
  pc : int;
  cycles : int;
  insns : int;
  hits : int;
  misses : int;
}

let summarize ?(fast = true) ~traced ~iters name =
  let open Lz_workloads.Microbench in
  let env = build ~fast ~iters name in
  if traced then Core.set_tracer env.core (Some (Trace.create ()));
  run_to_brk env;
  let core = env.core in
  { regs = Array.init 31 (Core.reg core);
    pc = core.Core.pc;
    cycles = core.Core.cycles;
    insns = core.Core.insns;
    hits = Tlb.hits core.Core.tlb;
    misses = Tlb.misses core.Core.tlb }

let prop_tracing_invisible =
  QCheck2.Test.make
    ~name:"trace: attaching a tracer leaves architectural state bit-identical"
    ~count:15
    QCheck2.Gen.(
      pair (oneofl Lz_workloads.Microbench.names) (int_range 1 400))
    (fun (name, iters) ->
      let off = summarize ~traced:false ~iters name in
      let on = summarize ~traced:true ~iters name in
      off = on)

(* ------------------------------------------------------------------ *)
(* Trap fast paths shrink the hot spans: with the Lowvisor
   steady-state forwarding, shallow hypercall return and fault-around
   enabled, the combined exclusive trap.hvc + trap.dabort cycles of a
   Table 5 style run must strictly decrease — on both the host module
   path and the Lowvisor-forwarded guest path — while attribution
   coverage stays complete. *)

let hot_trap_cycles (rep : Span.report) =
  List.fold_left
    (fun acc (r : Span.row) ->
      if r.Span.name = "trap.hvc" || r.Span.name = "trap.dabort" then
        acc + r.Span.cycles
      else acc)
    0 rep.Span.rows

let test_fast_paths_shrink_traps () =
  List.iter
    (fun (label, env, cm, n) ->
      let slow = Lz_eval.Switch_bench.traced_run cm ~env ~domains:16 ~n in
      let fast =
        Lz_eval.Switch_bench.traced_run ~fast_paths:true cm ~env ~domains:16
          ~n
      in
      let s = hot_trap_cycles slow.Lz_eval.Switch_bench.report in
      let f = hot_trap_cycles fast.Lz_eval.Switch_bench.report in
      check_bool
        (Printf.sprintf "%s: trap.hvc+trap.dabort exclusive shrink (%d -> %d)"
           label s f)
        true (f < s);
      check_bool
        (Printf.sprintf "%s: total cycles shrink (%d -> %d)" label
           slow.Lz_eval.Switch_bench.total_cycles
           fast.Lz_eval.Switch_bench.total_cycles)
        true
        (fast.Lz_eval.Switch_bench.total_cycles
        < slow.Lz_eval.Switch_bench.total_cycles);
      check_bool
        (Printf.sprintf "%s: fast-run coverage >= 0.95" label)
        true
        (fast.Lz_eval.Switch_bench.report.Span.coverage >= 0.95))
    (* The host run needs enough switches for a multi-page index array,
       or there is nothing for fault-around to cluster. *)
    [ ("host/cortex", Lz_eval.Switch_bench.Host, Cost_model.cortex_a55, 2000);
      ("guest/carmel", Lz_eval.Switch_bench.Guest, Cost_model.carmel, 300) ]

let prop_fast_slow_with_tracing =
  QCheck2.Test.make
    ~name:"trace: fast path stays invisible with tracing on" ~count:15
    QCheck2.Gen.(
      pair (oneofl Lz_workloads.Microbench.names) (int_range 1 400))
    (fun (name, iters) ->
      let fast = summarize ~fast:true ~traced:true ~iters name in
      let slow = summarize ~fast:false ~traced:true ~iters name in
      fast = slow)

let () =
  Alcotest.run "lz_trace"
    [ ( "pmu",
        [ Alcotest.test_case "enable/disable freeze" `Quick test_pmu_freeze;
          Alcotest.test_case "discrete events" `Quick
            test_pmu_discrete_events;
          Alcotest.test_case "32-bit wrap latches overflow" `Quick
            test_pmu_overflow_wrap;
          Alcotest.test_case "cycle-counter overflow flag" `Quick
            test_pmu_cycle_overflow;
          Alcotest.test_case "exact: aes" `Quick (test_pmu_exact "aes");
          Alcotest.test_case "exact: mysql" `Quick (test_pmu_exact "mysql");
          Alcotest.test_case "exact: nginx" `Quick (test_pmu_exact "nginx");
          Alcotest.test_case "guest MSR/MRS" `Quick test_pmu_guest_msr_mrs ]
      );
      ( "ring",
        [ Alcotest.test_case "overflow drops newest, keeps earliest" `Quick
            test_ring_overflow;
          Alcotest.test_case "json export" `Quick test_event_json ] );
      ( "wiring",
        [ Alcotest.test_case "tlb flush events" `Quick test_tlb_flush_events ]
      );
      ( "spans",
        [ Alcotest.test_case "gate-run attribution" `Quick
            test_traced_run_coverage;
          Alcotest.test_case "exclusive vs inclusive accounting" `Quick
            test_exclusive_inclusive;
          Alcotest.test_case "decimation scales point counts" `Quick
            test_decimation;
          Alcotest.test_case "forwarded-trap attribution (regression)"
            `Quick test_forwarded_trap_attribution;
          Alcotest.test_case "fast paths shrink the hot trap spans" `Quick
            test_fast_paths_shrink_traps;
          Alcotest.test_case "superblocks invisible under trace (128 dom)"
            `Quick test_blocks_invisible_under_trace ] );
      ( "invisibility",
        [ q prop_tracing_invisible; q prop_fast_slow_with_tracing ] ) ]
