(* Tests for the observability subsystem: the PMUv3 model (exactness
   against the core's own totals, enable/freeze semantics, guest
   MSR/MRS access), the bounded trace ring, flush/refill event wiring,
   span attribution over a real gate run, and the qcheck property that
   attaching a tracer leaves architectural state bit-identical. *)

open Lz_arm
open Lz_mem
open Lz_cpu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let q = QCheck_alcotest.to_alcotest

module Trace = Lz_trace.Trace
module Span = Lz_trace.Span

(* ------------------------------------------------------------------ *)
(* PMU counter semantics (pure model) *)

let ccntr_bit = 1 lsl Pmu.cycle_counter_bit

let test_pmu_freeze () =
  let p = Pmu.create () in
  Pmu.write_pmcr p ~cycles:0 ~insns:0 0b1;
  check_int "disabled counter stays 0" 0 (Pmu.read_ccntr p ~cycles:90);
  Pmu.write_cntenset p ~cycles:100 ~insns:0 ccntr_bit;
  check_int "counts from enable" 50 (Pmu.read_ccntr p ~cycles:150);
  Pmu.write_cntenclr p ~cycles:150 ~insns:0 ccntr_bit;
  check_int "frozen while disabled" 50 (Pmu.read_ccntr p ~cycles:400);
  Pmu.write_cntenset p ~cycles:400 ~insns:0 ccntr_bit;
  check_int "resumes without gap" 70 (Pmu.read_ccntr p ~cycles:420);
  (* PMCR.C resets the cycle counter; PMCR.E=0 freezes everything. *)
  Pmu.write_pmcr p ~cycles:420 ~insns:0 0b101;
  check_int "PMCR.C resets" 0 (Pmu.read_ccntr p ~cycles:420);
  Pmu.write_pmcr p ~cycles:430 ~insns:0 0b0;
  check_int "PMCR.E=0 freezes" 10 (Pmu.read_ccntr p ~cycles:500)

let test_pmu_discrete_events () =
  let p = Pmu.create () in
  Pmu.write_evtyper p ~cycles:0 ~insns:0 0 Pmu.Event.tlb_flush;
  Pmu.write_cntenset p ~cycles:0 ~insns:0 0b1;
  Pmu.write_pmcr p ~cycles:0 ~insns:0 0b1;
  Pmu.record p Pmu.Event.tlb_flush;
  Pmu.record p Pmu.Event.tlb_flush;
  Pmu.record p Pmu.Event.exc_taken;
  check_int "counter sees its event only" 2
    (Pmu.read_evcntr p ~cycles:10 ~insns:5 0);
  check_int "totals independent of programming" 1
    (Pmu.event_total p Pmu.Event.exc_taken);
  (* Retargeting freezes the old count and follows the new source. *)
  Pmu.write_evtyper p ~cycles:10 ~insns:5 0 Pmu.Event.exc_taken;
  Pmu.record p Pmu.Event.exc_taken;
  check_int "retarget restarts from current total" 3
    (Pmu.read_evcntr p ~cycles:20 ~insns:9 0)

(* ------------------------------------------------------------------ *)
(* PMU exactness over the microbench programs (host API) *)

let test_pmu_exact name () =
  let open Lz_workloads.Microbench in
  let env = build ~iters:500 name in
  let core = env.core in
  let p = Core.attach_pmu core in
  let cycles = core.Core.cycles and insns = core.Core.insns in
  Pmu.write_evtyper p ~cycles ~insns 0 Pmu.Event.cpu_cycles;
  Pmu.write_evtyper p ~cycles ~insns 1 Pmu.Event.inst_retired;
  Pmu.write_evtyper p ~cycles ~insns 2 Pmu.Event.l1d_tlb_refill;
  Pmu.write_evtyper p ~cycles ~insns 3 Pmu.Event.l1i_tlb_refill;
  Pmu.write_cntenset p ~cycles ~insns (ccntr_bit lor 0b1111);
  Pmu.write_pmcr p ~cycles ~insns 0b1;
  let c0 = core.Core.cycles and i0 = core.Core.insns in
  run_to_brk env;
  let cycles = core.Core.cycles and insns = core.Core.insns in
  check_int "PMCCNTR == elapsed core cycles" (cycles - c0)
    (Pmu.read_ccntr p ~cycles);
  check_int "PMEVCNTR0 (CPU_CYCLES) == elapsed core cycles" (cycles - c0)
    (Pmu.read_evcntr p ~cycles ~insns 0);
  check_int "PMEVCNTR1 (INST_RETIRED) == retired instructions" (insns - i0)
    (Pmu.read_evcntr p ~cycles ~insns 1);
  (* Every miss in these programs translates successfully, so D+I
     refills must equal the TLB's own miss count exactly. *)
  check_int "TLB refill counters == TLB misses"
    (Tlb.misses core.Core.tlb)
    (Pmu.read_evcntr p ~cycles ~insns 2
    + Pmu.read_evcntr p ~cycles ~insns 3)

(* ------------------------------------------------------------------ *)
(* Guest-visible PMU access via MSR/MRS *)

let code_va = 0x10000

let build_bare program =
  let phys = Phys.create () in
  let tlb = Tlb.create () in
  let root = Stage1.create_root phys in
  let code_pa = Phys.alloc_frame phys in
  Stage1.map_page phys ~root ~va:code_va ~pa:code_pa
    { Pte.user = false; read_only = true; uxn = true; pxn = false; ng = true };
  List.iteri
    (fun i insn -> Phys.write32 phys (code_pa + (4 * i)) (Encoding.encode insn))
    program;
  let core = Core.create phys tlb Cost_model.cortex_a55 Pstate.EL1 in
  Sysreg.write core.Core.sys Sysreg.TTBR0_EL1 (Mmu.ttbr_value ~root ~asid:1);
  core.Core.pc <- code_va;
  core

let test_pmu_guest_msr_mrs () =
  let open Insn in
  let core =
    build_bare
      [ Movz (0, 1, 0);
        Msr (Sysreg.PMCR_EL0, 0);            (* PMCR.E *)
        Movz (1, 0, 0);
        Movk (1, 0x8000, 16);                (* bit 31: cycle counter *)
        Msr (Sysreg.PMCNTENSET_EL0, 1);
        Mrs (2, Sysreg.PMCR_EL0);
        Mrs (3, Sysreg.PMCCNTR_EL0);
        Mrs (4, Sysreg.PMCCNTR_EL0);
        Brk 0 ]
  in
  (match Core.run core with
  | Core.Trap_el1 (Core.Ec_brk _) | Core.Trap_el2 (Core.Ec_brk _) -> ()
  | s -> Alcotest.failf "expected brk, got %a" Core.pp_stop s);
  let x n = Core.reg core n in
  check_int "MRS PMCR reads E back" 1 (x 2 land 1);
  check_int "PMCR.N advertises 6 counters" Pmu.n_counters
    ((x 2 lsr 11) land 0x1F);
  check_bool "PMCCNTR live after MSR enable" true (x 3 > 0);
  check_bool "PMCCNTR monotone between reads" true (x 4 > x 3);
  (* The MSR lazily attached a PMU that the host API can also read. *)
  (match Core.pmu core with
  | Some p ->
      let host = Pmu.read_ccntr p ~cycles:core.Core.cycles in
      check_bool "host read continues the guest's counter" true
        (host >= x 4 && host <= core.Core.cycles)
  | None -> Alcotest.fail "guest MSR did not attach a PMU")

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_ring_overflow () =
  let tr = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit tr ~cycles:(i * 10) (Trace.Syscall { nr = i })
  done;
  check_int "len capped at capacity" 4 (Trace.len tr);
  check_int "total counts every emission" 10 (Trace.total tr);
  check_int "dropped counts the overflow" 6 (Trace.dropped tr);
  List.iteri
    (fun i ev ->
      check_int "seq preserved" i ev.Trace.seq;
      check_int "cycles preserved" (i * 10) ev.Trace.cycles;
      match ev.Trace.payload with
      | Trace.Syscall { nr } -> check_int "payload preserved" i nr
      | p -> Alcotest.failf "unexpected payload %s" (Trace.payload_name p))
    (Trace.events tr);
  Trace.clear tr;
  check_int "clear empties the ring" 0 (Trace.len tr);
  check_int "clear resets drops" 0 (Trace.dropped tr)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_event_json () =
  let ev =
    { Trace.seq = 3; cycles = 41;
      payload = Trace.Tlb_flush { scope = Trace.Flush_asid; vmid = 2 } }
  in
  let s = Trace.event_to_json ev in
  check_bool "json names the event" true (contains s "tlb_flush");
  check_bool "json carries the timestamp" true (contains s "41")

(* ------------------------------------------------------------------ *)
(* TLB flush wiring *)

let test_tlb_flush_events () =
  let tlb = Tlb.create () in
  let tr = Trace.create () in
  let p = Pmu.create () in
  Tlb.set_tracer tlb (Some tr);
  Tlb.set_pmu tlb (Some p);
  Tlb.flush_all tlb;
  Tlb.flush_vmid tlb 3;
  Tlb.flush_asid tlb ~vmid:1 ~asid:7;
  Tlb.flush_va tlb ~vmid:1 ~va:0x4000;
  check_int "PMU saw every flush" 4 (Pmu.event_total p Pmu.Event.tlb_flush);
  let scopes =
    List.map
      (fun ev ->
        match ev.Trace.payload with
        | Trace.Tlb_flush { scope; _ } -> scope
        | p -> Alcotest.failf "unexpected payload %s" (Trace.payload_name p))
      (Trace.events tr)
  in
  check_bool "one event per flush kind" true
    (scopes
     = [ Trace.Flush_all; Trace.Flush_vmid; Trace.Flush_asid;
         Trace.Flush_va ])

(* ------------------------------------------------------------------ *)
(* Span attribution over a real 16-domain gate run *)

let test_traced_run_coverage () =
  let r =
    Lz_eval.Switch_bench.traced_run Cost_model.cortex_a55
      ~env:Lz_eval.Switch_bench.Host ~domains:16 ~n:300
  in
  let rep = r.Lz_eval.Switch_bench.report in
  check_int "no drops" 0 rep.Span.dropped;
  check_bool "coverage >= 0.95" true (rep.Span.coverage >= 0.95);
  let row name =
    try (List.find (fun (r : Span.row) -> r.name = name) rep.Span.rows).count
    with Not_found -> 0
  in
  check_int "every switch passed phase 1" 300 (row "gate.switch");
  check_int "every switch passed phase 2" 300 (row "gate.check");
  check_bool "gate phases carry cycles" true
    (List.for_all
       (fun (r : Span.row) -> r.cycles > 0)
       (List.filter
          (fun (r : Span.row) ->
            r.name = "gate.switch" || r.name = "gate.check")
          rep.Span.rows));
  check_int "one domain switch per gate pass" 300
    (try List.assoc "domain_switch" rep.Span.points with Not_found -> 0)

(* ------------------------------------------------------------------ *)
(* Tracing is architecturally invisible *)

type summary = {
  regs : int array;
  pc : int;
  cycles : int;
  insns : int;
  hits : int;
  misses : int;
}

let summarize ?(fast = true) ~traced ~iters name =
  let open Lz_workloads.Microbench in
  let env = build ~fast ~iters name in
  if traced then Core.set_tracer env.core (Some (Trace.create ()));
  run_to_brk env;
  let core = env.core in
  { regs = Array.init 31 (Core.reg core);
    pc = core.Core.pc;
    cycles = core.Core.cycles;
    insns = core.Core.insns;
    hits = Tlb.hits core.Core.tlb;
    misses = Tlb.misses core.Core.tlb }

let prop_tracing_invisible =
  QCheck2.Test.make
    ~name:"trace: attaching a tracer leaves architectural state bit-identical"
    ~count:15
    QCheck2.Gen.(
      pair (oneofl Lz_workloads.Microbench.names) (int_range 1 400))
    (fun (name, iters) ->
      let off = summarize ~traced:false ~iters name in
      let on = summarize ~traced:true ~iters name in
      off = on)

let prop_fast_slow_with_tracing =
  QCheck2.Test.make
    ~name:"trace: fast path stays invisible with tracing on" ~count:15
    QCheck2.Gen.(
      pair (oneofl Lz_workloads.Microbench.names) (int_range 1 400))
    (fun (name, iters) ->
      let fast = summarize ~fast:true ~traced:true ~iters name in
      let slow = summarize ~fast:false ~traced:true ~iters name in
      fast = slow)

let () =
  Alcotest.run "lz_trace"
    [ ( "pmu",
        [ Alcotest.test_case "enable/disable freeze" `Quick test_pmu_freeze;
          Alcotest.test_case "discrete events" `Quick
            test_pmu_discrete_events;
          Alcotest.test_case "exact: aes" `Quick (test_pmu_exact "aes");
          Alcotest.test_case "exact: mysql" `Quick (test_pmu_exact "mysql");
          Alcotest.test_case "exact: nginx" `Quick (test_pmu_exact "nginx");
          Alcotest.test_case "guest MSR/MRS" `Quick test_pmu_guest_msr_mrs ]
      );
      ( "ring",
        [ Alcotest.test_case "overflow drops newest, keeps earliest" `Quick
            test_ring_overflow;
          Alcotest.test_case "json export" `Quick test_event_json ] );
      ( "wiring",
        [ Alcotest.test_case "tlb flush events" `Quick test_tlb_flush_events ]
      );
      ( "spans",
        [ Alcotest.test_case "gate-run attribution" `Quick
            test_traced_run_coverage ] );
      ( "invisibility",
        [ q prop_tracing_invisible; q prop_fast_slow_with_tracing ] ) ]
